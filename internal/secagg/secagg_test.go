package secagg

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"math"
	"runtime"
	"testing"
	"testing/quick"

	"repro/internal/field"
	"repro/internal/tensor"
)

func vec(vals ...float64) []float64 { return vals }

func expectSum(t *testing.T, inputs map[int][]float64, include []int, got []float64) {
	t.Helper()
	want := make([]float64, len(got))
	for _, id := range include {
		for i, v := range inputs[id] {
			want[i] += v
		}
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-4 {
			t.Fatalf("sum[%d] = %v, want %v (full: %v vs %v)", i, got[i], want[i], got, want)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	x := []float64{0, 1.5, -2.25, 1e-6, -1e-6, 1000.125}
	got := Decode(Encode(x))
	for i := range x {
		if math.Abs(got[i]-x[i]) > 1.0/FixedPointScale {
			t.Fatalf("decode(encode(%v)) = %v", x[i], got[i])
		}
	}
}

func TestEncodeNegativeWraps(t *testing.T) {
	e := Encode([]float64{-1})
	if e[0] <= field.P/2 {
		t.Fatalf("negative value should land in top half of field: %d", e[0])
	}
}

func TestPRGDeterministicAndSeedSensitive(t *testing.T) {
	seed1 := bytes.Repeat([]byte{1}, 32)
	seed2 := bytes.Repeat([]byte{2}, 32)
	a := prg(seed1, 16)
	b := prg(seed1, 16)
	c := prg(seed2, 16)
	diff := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("prg must be deterministic")
		}
		if a[i] >= field.P {
			t.Fatal("prg output outside field")
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds must give different streams")
	}
}

func TestGroupSpans(t *testing.T) {
	cases := []struct {
		n, size int
		want    [][2]int
	}{
		{0, 4, nil},
		{3, 0, nil},
		{1, 4, [][2]int{{0, 1}}}, // undersized: single span, caller refuses
		{3, 4, [][2]int{{0, 3}}}, // undersized: single span
		{4, 4, [][2]int{{0, 4}}}, // exact
		{5, 4, [][2]int{{0, 5}}}, // remainder of 1 folds — never a singleton
		{8, 4, [][2]int{{0, 4}, {4, 8}}},
		{9, 4, [][2]int{{0, 4}, {4, 9}}},
		{11, 4, [][2]int{{0, 4}, {4, 11}}},
		{12, 4, [][2]int{{0, 4}, {4, 8}, {8, 12}}},
	}
	for _, c := range cases {
		got := GroupSpans(c.n, c.size)
		if len(got) != len(c.want) {
			t.Fatalf("GroupSpans(%d,%d) = %v, want %v", c.n, c.size, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("GroupSpans(%d,%d) = %v, want %v", c.n, c.size, got, c.want)
			}
		}
	}
}

func TestPRGApplyMatchesOneShotExpansion(t *testing.T) {
	// The chunked stream must be bit-identical to a single AES-CTR
	// expansion of the whole vector: device and server only agree on masks
	// if chunking never restarts or skips keystream. 1000 elements spans
	// the chunk boundary.
	seed := bytes.Repeat([]byte{7}, 32)
	const n = 1000
	block, err := aes.NewCipher(seed)
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, 8*n)
	cipher.NewCTR(block, make([]byte, aes.BlockSize)).XORKeyStream(raw, raw)
	want := make([]uint64, n)
	for i := range want {
		want[i] = field.Reduce(binary.BigEndian.Uint64(raw[8*i:]))
	}

	dst := make([]uint64, n)
	for i := range dst {
		dst[i] = uint64(i * 37)
	}
	orig := append([]uint64(nil), dst...)
	prgApply(seed, dst, false)
	for i := range dst {
		if dst[i] != field.Add(orig[i], want[i]) {
			t.Fatalf("chunked add diverges from one-shot stream at %d", i)
		}
	}
	prgApply(seed, dst, true)
	for i := range dst {
		if dst[i] != orig[i] {
			t.Fatalf("subtracting the same stream did not invert at %d", i)
		}
	}
}

func TestParallelWorkersMatchSerial(t *testing.T) {
	// Force a real worker pool even on a 1-CPU box; under -race (CI runs
	// this package with it) this checks the parallel mask pipeline.
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	cfg := Config{N: 9, T: 5, VectorLen: 700} // > one PRG chunk
	inputs := make(map[int][]float64, cfg.N)
	for id := 1; id <= cfg.N; id++ {
		v := make([]float64, cfg.VectorLen)
		for j := range v {
			v[j] = float64(id) - float64(j)/7
		}
		inputs[id] = v
	}
	sum, survivors, err := Run(cfg, inputs, []int{2, 7}, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	expectSum(t, inputs, survivors, sum)
}

func TestParallelForPropagatesError(t *testing.T) {
	wantErr := errors.New("boom")
	for _, procs := range []int{1, 4} {
		old := runtime.GOMAXPROCS(procs)
		err := parallelFor(100, func(i int) error {
			if i == 57 {
				return wantErr
			}
			return nil
		})
		runtime.GOMAXPROCS(old)
		if !errors.Is(err, wantErr) {
			t.Fatalf("procs=%d: err = %v, want %v", procs, err, wantErr)
		}
	}
}

func TestParallelMasksMergesPartials(t *testing.T) {
	const dim, tasks = 64, 10
	want := make([]uint64, dim)
	for i := 0; i < tasks; i++ {
		for j := 0; j < dim; j++ {
			if i%2 == 0 {
				want[j] = field.Add(want[j], uint64(i*dim+j))
			} else {
				want[j] = field.Sub(want[j], uint64(i*dim+j))
			}
		}
	}
	for _, procs := range []int{1, 4} {
		old := runtime.GOMAXPROCS(procs)
		dst := make([]uint64, dim)
		err := parallelMasks(dst, tasks, func(i int, acc []uint64) error {
			for j := range acc {
				if i%2 == 0 {
					acc[j] = field.Add(acc[j], uint64(i*dim+j))
				} else {
					acc[j] = field.Sub(acc[j], uint64(i*dim+j))
				}
			}
			return nil
		})
		runtime.GOMAXPROCS(old)
		if err != nil {
			t.Fatal(err)
		}
		for j := range dst {
			if dst[j] != want[j] {
				t.Fatalf("procs=%d: dst[%d] = %d, want %d", procs, j, dst[j], want[j])
			}
		}
	}
}

func TestSplitBytesRoundTrip(t *testing.T) {
	secret := make([]byte, 32)
	if _, err := rand.Read(secret); err != nil {
		t.Fatal(err)
	}
	shares, err := splitBytes(secret, 5, 3, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	got, err := reconstructBytes(shares[1:4], 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatal("reconstructed secret differs")
	}
}

func TestSplitBytesWrongLength(t *testing.T) {
	if _, err := splitBytes([]byte{1, 2, 3}, 3, 2, rand.Reader); err == nil {
		t.Fatal("expected error for short secret")
	}
}

func TestBundleEncryptDecrypt(t *testing.T) {
	shared := bytes.Repeat([]byte{9}, 32)
	b := &shareBundle{Owner: 3, Holder: 7}
	b.BShare.X = 7
	b.BShare.Ys[0] = 123
	b.SKShare.X = 7
	b.SKShare.Ys[5] = 456
	ct, err := encryptBundle(shared, b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decryptBundle(shared, ct)
	if err != nil {
		t.Fatal(err)
	}
	if got.Owner != 3 || got.Holder != 7 || got.BShare.Ys[0] != 123 || got.SKShare.Ys[5] != 456 {
		t.Fatalf("bundle round-trip: %+v", got)
	}
	// Wrong key must fail authentication.
	if _, err := decryptBundle(bytes.Repeat([]byte{8}, 32), ct); err == nil {
		t.Fatal("decryption with wrong key must fail")
	}
	// Tampered ciphertext must fail.
	ct[len(ct)-1] ^= 1
	if _, err := decryptBundle(shared, ct); err == nil {
		t.Fatal("tampered ciphertext must fail")
	}
}

func TestConfigValidate(t *testing.T) {
	for _, c := range []Config{
		{N: 1, T: 1, VectorLen: 1},
		{N: 3, T: 0, VectorLen: 1},
		{N: 3, T: 4, VectorLen: 1},
		{N: 3, T: 2, VectorLen: 0},
	} {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) should fail", c)
		}
	}
	if err := (Config{N: 3, T: 2, VectorLen: 5}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFullProtocolNoDropout(t *testing.T) {
	cfg := Config{N: 4, T: 3, VectorLen: 3}
	inputs := map[int][]float64{
		1: vec(1, 2, 3),
		2: vec(0.5, -1, 0),
		3: vec(-2, 0.25, 1),
		4: vec(10, -10, 0.125),
	}
	sum, survivors, err := Run(cfg, inputs, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(survivors) != 4 {
		t.Fatalf("survivors = %v", survivors)
	}
	expectSum(t, inputs, survivors, sum)
}

func TestDropoutAfterShareKeys(t *testing.T) {
	// Device 2 distributes shares then vanishes: its pairwise masks pollute
	// the sum and must be reconstructed from its masking-key shares.
	cfg := Config{N: 4, T: 2, VectorLen: 2}
	inputs := map[int][]float64{
		1: vec(1, 1), 2: vec(100, 100), 3: vec(2, 2), 4: vec(3, 3),
	}
	sum, survivors, err := Run(cfg, inputs, []int{2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(survivors) != 3 {
		t.Fatalf("survivors = %v", survivors)
	}
	// Dropped device's input must NOT be in the sum.
	expectSum(t, inputs, survivors, sum)
}

func TestDropoutAfterMaskedInput(t *testing.T) {
	// Device 3 commits its masked input then never answers the unmask
	// round; its update is still included ("All devices who complete this
	// round will have their model update included").
	cfg := Config{N: 4, T: 2, VectorLen: 2}
	inputs := map[int][]float64{
		1: vec(1, 0), 2: vec(0, 1), 3: vec(5, 5), 4: vec(-1, -1),
	}
	sum, survivors, err := Run(cfg, inputs, nil, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	if len(survivors) != 4 {
		t.Fatalf("survivors = %v", survivors)
	}
	expectSum(t, inputs, survivors, sum)
}

func TestBothDropoutKinds(t *testing.T) {
	cfg := Config{N: 6, T: 3, VectorLen: 4}
	inputs := map[int][]float64{
		1: vec(1, 2, 3, 4), 2: vec(-1, -2, -3, -4), 3: vec(0.5, 0.5, 0.5, 0.5),
		4: vec(7, 0, 0, 7), 5: vec(0, 9, 9, 0), 6: vec(1, 1, 1, 1),
	}
	sum, survivors, err := Run(cfg, inputs, []int{2, 5}, []int{6})
	if err != nil {
		t.Fatal(err)
	}
	if len(survivors) != 4 {
		t.Fatalf("survivors = %v", survivors)
	}
	expectSum(t, inputs, survivors, sum)
}

func TestTooManyDropoutsFails(t *testing.T) {
	cfg := Config{N: 4, T: 3, VectorLen: 1}
	inputs := map[int][]float64{1: vec(1), 2: vec(2), 3: vec(3), 4: vec(4)}
	if _, _, err := Run(cfg, inputs, []int{2, 3}, nil); err == nil {
		t.Fatal("2 of 4 survivors with T=3 must fail")
	}
	// Too few unmask responses also fails.
	if _, _, err := Run(cfg, inputs, nil, []int{1, 2}); err == nil {
		t.Fatal("2 unmask responders with T=3 must fail")
	}
}

func TestClientRefusesSubThresholdUnmask(t *testing.T) {
	cfg := Config{N: 3, T: 3, VectorLen: 1}
	c, err := NewClient(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	peers := []KeyAdvert{c.Advertise()}
	for id := 2; id <= 3; id++ {
		p, _ := NewClient(id, cfg)
		peers = append(peers, p.Advertise())
	}
	if err := c.ReceiveRoster(peers); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Unmask([]int{1, 2}); err == nil {
		t.Fatal("client must refuse to unmask below threshold")
	}
}

func TestServerRejectsDuplicatesAndUnknowns(t *testing.T) {
	cfg := Config{N: 3, T: 2, VectorLen: 2}
	srv, _ := NewServer(cfg)
	c1, _ := NewClient(1, cfg)
	c2, _ := NewClient(2, cfg)
	if err := srv.RegisterAdvert(c1.Advertise()); err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterAdvert(c1.Advertise()); err == nil {
		t.Fatal("duplicate advert must be rejected")
	}
	if err := srv.RegisterAdvert(c2.Advertise()); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Roster(); err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterAdvert(KeyAdvert{ID: 3}); err == nil {
		t.Fatal("advert after roster freeze must be rejected")
	}
	if err := srv.AddMasked(99, make([]uint64, 2)); err == nil {
		t.Fatal("masked input from unknown device must be rejected")
	}
	if err := srv.AddMasked(1, make([]uint64, 5)); err == nil {
		t.Fatal("wrong-length masked input must be rejected")
	}
	if err := srv.AddMasked(1, make([]uint64, 2)); err != nil {
		t.Fatal(err)
	}
	if err := srv.AddMasked(1, make([]uint64, 2)); err == nil {
		t.Fatal("duplicate masked input must be rejected")
	}
}

func TestMaskedInputIsActuallyMasked(t *testing.T) {
	// An individual masked vector must look nothing like the input — this
	// is a smoke check that masking is applied (true uniformity is a
	// property of the PRG).
	cfg := Config{N: 3, T: 2, VectorLen: 4}
	inputs := map[int][]float64{1: vec(0, 0, 0, 0), 2: vec(0, 0, 0, 0), 3: vec(0, 0, 0, 0)}
	srv, _ := NewServer(cfg)
	clients := make(map[int]*Client)
	for id := range inputs {
		c, _ := NewClient(id, cfg)
		clients[id] = c
		_ = srv.RegisterAdvert(c.Advertise())
	}
	roster, _ := srv.Roster()
	for _, c := range clients {
		_ = c.ReceiveRoster(roster)
	}
	y, err := clients[1].MaskedInput(inputs[1])
	if err != nil {
		t.Fatal(err)
	}
	zeroish := 0
	for _, v := range y {
		if v == 0 {
			zeroish++
		}
	}
	if zeroish == len(y) {
		t.Fatal("masked zero vector is still zero — no masking applied")
	}
}

func TestRunVariousSizes(t *testing.T) {
	for _, n := range []int{2, 5, 9} {
		cfg := Config{N: n, T: (n + 1) / 2, VectorLen: 3}
		inputs := make(map[int][]float64, n)
		for id := 1; id <= n; id++ {
			inputs[id] = vec(float64(id), -float64(id), 0.5*float64(id))
		}
		sum, survivors, err := Run(cfg, inputs, nil, nil)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		expectSum(t, inputs, survivors, sum)
	}
}

// Property: Encode is additively homomorphic under field addition for sums
// small enough to avoid wraparound.
func TestEncodeHomomorphism(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.Abs(a) > 1e6 || math.Abs(b) > 1e6 {
			return true
		}
		ea, eb := Encode([]float64{a}), Encode([]float64{b})
		sum := []uint64{field.Add(ea[0], eb[0])}
		got := Decode(sum)[0]
		return math.Abs(got-(a+b)) <= 2.0/FixedPointScale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: with random dropout patterns that keep at least T survivors and
// T unmask responders, the protocol always produces the exact survivor sum.
func TestRandomDropoutPatterns(t *testing.T) {
	rng := tensor.NewRNG(99)
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(5) // 4..8
		thresh := 2 + rng.Intn(n/2)
		cfg := Config{N: n, T: thresh, VectorLen: 3}
		inputs := make(map[int][]float64, n)
		for id := 1; id <= n; id++ {
			inputs[id] = vec(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		}
		// Drop devices randomly, keeping ≥ thresh survivors who respond.
		var dropShare, dropMask []int
		alive := n
		for id := 1; id <= n; id++ {
			if alive <= thresh {
				break
			}
			switch rng.Intn(4) {
			case 0:
				dropShare = append(dropShare, id)
				alive--
			case 1:
				dropMask = append(dropMask, id)
				alive--
			}
		}
		sum, survivors, err := Run(cfg, inputs, dropShare, dropMask)
		if err != nil {
			t.Fatalf("trial %d (n=%d t=%d dropS=%v dropM=%v): %v", trial, n, thresh, dropShare, dropMask, err)
		}
		expectSum(t, inputs, survivors, sum)
	}
}

func TestClientStateMachineErrors(t *testing.T) {
	cfg := Config{N: 3, T: 2, VectorLen: 2}
	if _, err := NewClient(0, cfg); err == nil {
		t.Fatal("id 0 must fail")
	}
	if _, err := NewClient(1, Config{N: 1, T: 1, VectorLen: 1}); err == nil {
		t.Fatal("invalid config must fail")
	}
	c, err := NewClient(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ShareKeys(); err == nil {
		t.Fatal("ShareKeys before roster must fail")
	}
	if _, err := c.MaskedInput([]float64{1, 2}); err == nil {
		t.Fatal("MaskedInput before roster must fail")
	}
	if _, err := c.Unmask([]int{1, 2}); err == nil {
		t.Fatal("Unmask before roster must fail")
	}

	// Roster problems.
	c2, _ := NewClient(2, cfg)
	c3, _ := NewClient(3, cfg)
	if err := c.ReceiveRoster([]KeyAdvert{c2.Advertise()}); err == nil {
		t.Fatal("roster below threshold must fail")
	}
	if err := c.ReceiveRoster([]KeyAdvert{c2.Advertise(), c3.Advertise()}); err == nil {
		t.Fatal("roster without self must fail")
	}
	dup := c2.Advertise()
	if err := c.ReceiveRoster([]KeyAdvert{c.Advertise(), dup, dup}); err == nil {
		t.Fatal("duplicate roster ids must fail")
	}

	// Valid roster; then bad inputs.
	if err := c.ReceiveRoster([]KeyAdvert{c.Advertise(), c2.Advertise(), c3.Advertise()}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.MaskedInput([]float64{1}); err == nil {
		t.Fatal("wrong-length input must fail")
	}
	if _, err := c.Unmask([]int{1, 99}); err == nil {
		t.Fatal("survivor outside roster must fail")
	}
	if _, err := c.ReceiveShares([]RoutedShare{{Owner: 2, Holder: 99}}); err == nil {
		t.Fatal("misrouted share must fail")
	}
}

func TestUnmaskResponderNeverRevealsBothShares(t *testing.T) {
	// Core security invariant: for one owner, a responder reveals the
	// personal-seed share (survivor) XOR the masking-key share (dropped) —
	// never both, which would unmask an individual's update.
	cfg := Config{N: 4, T: 2, VectorLen: 1}
	clients := make(map[int]*Client)
	var roster []KeyAdvert
	for id := 1; id <= 4; id++ {
		c, err := NewClient(id, cfg)
		if err != nil {
			t.Fatal(err)
		}
		clients[id] = c
		roster = append(roster, c.Advertise())
	}
	var all []RoutedShare
	for _, c := range clients {
		if err := c.ReceiveRoster(roster); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range clients {
		rs, err := c.ShareKeys()
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, rs...)
	}
	byHolder := make(map[int][]RoutedShare)
	for _, rs := range all {
		byHolder[rs.Holder] = append(byHolder[rs.Holder], rs)
	}
	for id, c := range clients {
		if _, err := c.ReceiveShares(byHolder[id]); err != nil {
			t.Fatal(err)
		}
	}
	// Survivors {1,2,3}; device 4 dropped.
	resp, err := clients[1].Unmask([]int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	bOwners := map[int]bool{}
	for _, os := range resp.BShares {
		bOwners[os.Owner] = true
	}
	for _, os := range resp.SKShares {
		if bOwners[os.Owner] {
			t.Fatalf("both share kinds revealed for owner %d", os.Owner)
		}
		if os.Owner != 4 {
			t.Fatalf("masking-key share revealed for survivor %d", os.Owner)
		}
	}
	for owner := range bOwners {
		if owner == 4 {
			t.Fatal("personal-seed share revealed for dropped device")
		}
	}
}
