package secagg

import (
	"fmt"

	"repro/internal/field"
)

// Verifiable sharing (the Feldman-VSS role, adapted — see
// internal/field/commit.go for why exponent commitments are unsound for
// 48-bit chunked secrets): alongside its Round-1 share bundles, every
// owner broadcasts one hiding commitment per (holder, secret kind)
// evaluation point. Holders verify the shares they receive on receipt and
// complain about mismatches; the server verifies every share revealed at
// unmask time before it enters reconstruction. Failures are attributed:
// a bad bundle blames its owner (excluded before the masked-input round,
// so the group still commits without it), a forged unmask share blames
// the responder (its shares are skipped; reconstruction proceeds from the
// other ≥ T valid ones).

// Share kinds, used for commitment domain separation.
const (
	kindB  = byte('b') // personal mask seed b_u
	kindSK = byte('k') // masking secret key
)

// commitContext builds the domain-separation context for one owner's
// shares of one secret kind. The holder's evaluation point x is bound
// separately by field.CommitShare.
func commitContext(owner int, kind byte) []byte {
	return []byte(fmt.Sprintf("sagg/vss/%d/%c", owner, kind))
}

// commitChunked commits to one chunked share.
func commitChunked(owner int, kind byte, s chunkedShare, blinder []byte) [field.CommitmentLen]byte {
	return field.CommitShare(commitContext(owner, kind), s.X, s.Ys[:], blinder)
}

// verifyChunked checks a chunked share and its blinder against a
// broadcast commitment.
func verifyChunked(owner int, kind byte, s chunkedShare, blinder, commitment []byte) bool {
	if len(blinder) != field.BlinderLen {
		return false
	}
	return field.VerifyShare(commitContext(owner, kind), s.X, s.Ys[:], blinder, commitment)
}

// ShareCommitments is one owner's Round-1 commitment broadcast: for every
// holder index i (evaluation point x = i+1 over the sorted roster), the
// commitments to the b-seed share and the masking-key share sent to that
// holder. The server relays the full set to every participant with the
// routed shares.
type ShareCommitments struct {
	Owner int
	// B[i] and SK[i] are field.CommitmentLen-byte digests for holder
	// index i.
	B  [][]byte
	SK [][]byte
}

// validate checks structural integrity for a roster of n holders.
func (sc *ShareCommitments) validate(n int) error {
	if len(sc.B) != n || len(sc.SK) != n {
		return fmt.Errorf("secagg: commitments from %d cover %d/%d holders, want %d",
			sc.Owner, len(sc.B), len(sc.SK), n)
	}
	for i := 0; i < n; i++ {
		if len(sc.B[i]) != field.CommitmentLen || len(sc.SK[i]) != field.CommitmentLen {
			return fmt.Errorf("secagg: malformed commitment from %d for holder index %d", sc.Owner, i)
		}
	}
	return nil
}

// Complaint is a holder's Round-1.5 report that an owner's share bundle
// failed verification (undecryptable, mis-addressed, or inconsistent with
// the owner's broadcast commitments). The server excludes blamed owners
// from the mask set before the masked-input round — a survivor cannot be
// evicted after its masked input has joined the online sum.
type Complaint struct {
	By      int
	Against int
	Reason  string
}
