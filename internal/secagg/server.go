package secagg

import (
	"crypto/ecdh"
	"fmt"
	"sort"

	"repro/internal/field"
)

// Server is the aggregator side of one Secure Aggregation instance. It only
// ever holds masked vectors and aggregate state — never an individual
// cleartext update, which is the point of the protocol (Sec. 6: protection
// against "honest but curious" access to Aggregator memory).
type Server struct {
	cfg Config

	roster    map[int]KeyAdvert
	rosterIDs []int // sorted; frozen once Roster() is served

	sum      []uint64 // running sum of masked inputs (online aggregation)
	maskedBy map[int]bool

	unmaskFrom map[int]bool
	bShares    map[int][]chunkedShare // owner -> revealed personal-seed shares
	skShares   map[int][]chunkedShare // owner -> revealed masking-key shares
}

// NewServer creates the server side of an instance.
func NewServer(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Server{
		cfg:        cfg,
		roster:     make(map[int]KeyAdvert),
		sum:        make([]uint64, cfg.VectorLen),
		maskedBy:   make(map[int]bool),
		unmaskFrom: make(map[int]bool),
		bShares:    make(map[int][]chunkedShare),
		skShares:   make(map[int][]chunkedShare),
	}, nil
}

// RegisterAdvert records a Round-0 key advertisement. Registration closes
// when Roster is first called.
func (s *Server) RegisterAdvert(a KeyAdvert) error {
	if s.rosterIDs != nil {
		return fmt.Errorf("secagg: roster already frozen")
	}
	if a.ID < 1 {
		return fmt.Errorf("secagg: invalid id %d", a.ID)
	}
	if _, dup := s.roster[a.ID]; dup {
		return fmt.Errorf("secagg: duplicate advert from %d", a.ID)
	}
	if len(s.roster) >= s.cfg.N {
		return fmt.Errorf("secagg: instance full (%d participants)", s.cfg.N)
	}
	s.roster[a.ID] = a
	return nil
}

// Roster freezes and returns the participant set U1 for broadcast. It fails
// if fewer than T devices advertised.
func (s *Server) Roster() ([]KeyAdvert, error) {
	if len(s.roster) < s.cfg.T {
		return nil, fmt.Errorf("secagg: only %d adverts, need ≥ %d", len(s.roster), s.cfg.T)
	}
	if s.rosterIDs == nil {
		ids := make([]int, 0, len(s.roster))
		for id := range s.roster {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		s.rosterIDs = ids
	}
	out := make([]KeyAdvert, 0, len(s.rosterIDs))
	for _, id := range s.rosterIDs {
		out = append(out, s.roster[id])
	}
	return out, nil
}

// RouteShares groups the Round-1 bundles by holder for delivery. Bundles
// from unknown owners are dropped.
func (s *Server) RouteShares(all []RoutedShare) map[int][]RoutedShare {
	byHolder := make(map[int][]RoutedShare)
	for _, rs := range all {
		if _, ok := s.roster[rs.Owner]; !ok {
			continue
		}
		if _, ok := s.roster[rs.Holder]; !ok {
			continue
		}
		byHolder[rs.Holder] = append(byHolder[rs.Holder], rs)
	}
	return byHolder
}

// AddMasked accumulates a Round-2 masked input into the running sum. The
// server never stores the individual vector beyond this addition.
func (s *Server) AddMasked(id int, y []uint64) error {
	if s.rosterIDs == nil {
		return fmt.Errorf("secagg: masked input before roster freeze")
	}
	if _, ok := s.roster[id]; !ok {
		return fmt.Errorf("secagg: masked input from unknown device %d", id)
	}
	if s.maskedBy[id] {
		return fmt.Errorf("secagg: duplicate masked input from %d", id)
	}
	if len(y) != s.cfg.VectorLen {
		return fmt.Errorf("secagg: masked input length %d, want %d", len(y), s.cfg.VectorLen)
	}
	field.AddVec(s.sum, s.sum, y)
	s.maskedBy[id] = true
	return nil
}

// Survivors returns the set U2 of devices whose masked input arrived,
// sorted. The round can proceed only if |U2| ≥ T.
func (s *Server) Survivors() ([]int, error) {
	if len(s.maskedBy) < s.cfg.T {
		return nil, fmt.Errorf("secagg: only %d masked inputs, need ≥ %d", len(s.maskedBy), s.cfg.T)
	}
	out := make([]int, 0, len(s.maskedBy))
	for id := range s.maskedBy {
		out = append(out, id)
	}
	sort.Ints(out)
	return out, nil
}

// AddUnmaskResponse records a Round-3 response.
func (s *Server) AddUnmaskResponse(r *UnmaskResponse) error {
	if _, ok := s.roster[r.From]; !ok {
		return fmt.Errorf("secagg: unmask response from unknown device %d", r.From)
	}
	if s.unmaskFrom[r.From] {
		return fmt.Errorf("secagg: duplicate unmask response from %d", r.From)
	}
	s.unmaskFrom[r.From] = true
	for _, os := range r.BShares {
		if s.maskedBy[os.Owner] {
			s.bShares[os.Owner] = append(s.bShares[os.Owner], os.Share)
		}
	}
	for _, os := range r.SKShares {
		if !s.maskedBy[os.Owner] {
			s.skShares[os.Owner] = append(s.skShares[os.Owner], os.Share)
		}
	}
	return nil
}

// Sum finalizes the protocol: reconstructs personal seeds of survivors and
// masking keys of dropped devices, strips all masks, and returns the
// aggregate Σ_{u∈U2} x_u in field encoding (Decode converts to reals).
func (s *Server) Sum() ([]uint64, error) {
	survivors, err := s.Survivors()
	if err != nil {
		return nil, err
	}
	if len(s.unmaskFrom) < s.cfg.T {
		return nil, fmt.Errorf("secagg: only %d unmask responses, need ≥ %d", len(s.unmaskFrom), s.cfg.T)
	}
	out := make([]uint64, s.cfg.VectorLen)
	copy(out, s.sum)

	// Reconstruct all secrets first (cheap Shamir interpolation, serial),
	// building one task per mask expansion. The expansions — an ECDH plus a
	// PRG stream each for dropped-device pairs, a PRG stream for survivor
	// personal masks — are the O(dropped × survivors) hot path and run on
	// the worker pool, each worker folding into a private partial vector
	// merged once at the end.
	type maskTask struct {
		owner int
		peer  int              // pairwise tasks only
		seed  []byte           // PRG seed, when already known
		sk    *ecdh.PrivateKey // else derive the seed from sk × pub
		pub   []byte
		sub   bool
	}
	dropped := len(s.rosterIDs) - len(survivors)
	tasks := make([]maskTask, 0, len(survivors)*(1+dropped))

	// Survivors' personal masks PRG(b_u) are subtracted.
	for _, u := range survivors {
		shares := s.bShares[u]
		if len(shares) < s.cfg.T {
			return nil, fmt.Errorf("secagg: %d personal-seed shares for %d, need %d", len(shares), u, s.cfg.T)
		}
		seed, err := reconstructBytes(shares[:s.cfg.T], s.cfg.T)
		if err != nil {
			return nil, fmt.Errorf("secagg: reconstruct seed of %d: %w", u, err)
		}
		tasks = append(tasks, maskTask{owner: u, seed: seedKey(seed), sub: true})
	}

	// Residual pairwise masks of dropped devices.
	survSet := make(map[int]bool, len(survivors))
	for _, v := range survivors {
		survSet[v] = true
	}
	for _, u := range s.rosterIDs {
		if survSet[u] {
			continue
		}
		shares := s.skShares[u]
		if len(shares) < s.cfg.T {
			return nil, fmt.Errorf("secagg: %d masking-key shares for dropped %d, need %d", len(shares), u, s.cfg.T)
		}
		skBytes, err := reconstructBytes(shares[:s.cfg.T], s.cfg.T)
		if err != nil {
			return nil, fmt.Errorf("secagg: reconstruct key of %d: %w", u, err)
		}
		sk, err := ecdh.X25519().NewPrivateKey(skBytes)
		if err != nil {
			return nil, fmt.Errorf("secagg: rebuild key of %d: %w", u, err)
		}
		for _, v := range survivors {
			// Survivor v's masked input contains +PRG(s_vu) when v<u and
			// −PRG(s_vu) when v>u; cancel that residual.
			tasks = append(tasks, maskTask{owner: u, peer: v, sk: sk, pub: s.roster[v].SPub, sub: v < u})
		}
	}

	err = parallelMasks(out, len(tasks), func(i int, acc []uint64) error {
		t := tasks[i]
		seed := t.seed
		if seed == nil {
			pub, err := ecdh.X25519().NewPublicKey(t.pub)
			if err != nil {
				return fmt.Errorf("secagg: spub of %d: %w", t.peer, err)
			}
			shared, err := t.sk.ECDH(pub)
			if err != nil {
				return fmt.Errorf("secagg: ecdh %d×%d: %w", t.owner, t.peer, err)
			}
			seed = pairwiseSeed(shared, 'p')
		}
		prgApply(seed, acc, t.sub)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
