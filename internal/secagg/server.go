package secagg

import (
	"crypto/ecdh"
	"fmt"
	"sort"

	"repro/internal/field"
	"repro/internal/obs"
)

// Process-wide secagg counters (cached pointers; the instruments live in
// obs.Default and surface on /metrics as blame/dropout attribution).
var (
	obsComplaints = obs.Default.Counter("fl_secagg_complaints_total")
	obsBlamed     = obs.Default.Counter("fl_secagg_blamed_total")
	obsDropouts   = obs.Default.Counter("fl_secagg_dropouts_total")
)

// Server is the aggregator side of one Secure Aggregation instance. It only
// ever holds masked vectors and aggregate state — never an individual
// cleartext update, which is the point of the protocol (Sec. 6: protection
// against "honest but curious" access to Aggregator memory).
//
// Robustness posture: every share the server consumes is verified against
// its owner's broadcast commitments before it can influence
// reconstruction, and every rejection is attributed to a device (the
// Blamed map). A blamed share-dealer is excluded from the mask set before
// the masked-input round, so the group commits without it; a blamed
// unmask responder has its shares skipped, and the sum still comes out
// right from the remaining ≥ T honest ones. The server can therefore
// never be steered into producing a wrong sum by a forged share — only
// into a (clean, attributed) abort when fewer than T honest participants
// remain.
type Server struct {
	cfg Config

	roster    map[int]KeyAdvert
	rosterIDs []int // sorted; frozen once Roster() is served

	// commits is each owner's broadcast share commitments; registration
	// doubles as the "shares delivered" signal for the mask set.
	commits map[int]ShareCommitments
	// blamed maps a device id to the reason it was excluded.
	blamed map[int]string
	// maskSet, once frozen by MaskSet, is the set of devices whose
	// pairwise masks are in play: shares delivered and unblamed. Nil until
	// frozen; instances driven without commitments (legacy path) never
	// freeze it and fall back to the full roster.
	maskSet map[int]bool
	maskIDs []int

	sum      []uint64 // running sum of masked inputs (online aggregation)
	maskedBy map[int]bool

	unmaskFrom map[int]bool
	bShares    map[int][]chunkedShare // owner -> revealed personal-seed shares
	skShares   map[int][]chunkedShare // owner -> revealed masking-key shares
}

// NewServer creates the server side of an instance.
func NewServer(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Server{
		cfg:        cfg,
		roster:     make(map[int]KeyAdvert),
		commits:    make(map[int]ShareCommitments),
		blamed:     make(map[int]string),
		sum:        make([]uint64, cfg.VectorLen),
		maskedBy:   make(map[int]bool),
		unmaskFrom: make(map[int]bool),
		bShares:    make(map[int][]chunkedShare),
		skShares:   make(map[int][]chunkedShare),
	}, nil
}

// RegisterAdvert records a Round-0 key advertisement. Registration closes
// when Roster is first called.
func (s *Server) RegisterAdvert(a KeyAdvert) error {
	if s.rosterIDs != nil {
		return fmt.Errorf("secagg: roster already frozen")
	}
	if a.ID < 1 {
		return fmt.Errorf("secagg: invalid id %d", a.ID)
	}
	if _, dup := s.roster[a.ID]; dup {
		return fmt.Errorf("secagg: duplicate advert from %d", a.ID)
	}
	if len(s.roster) >= s.cfg.N {
		return fmt.Errorf("secagg: instance full (%d participants)", s.cfg.N)
	}
	s.roster[a.ID] = a
	return nil
}

// Roster freezes and returns the participant set U1 for broadcast. It fails
// if fewer than T devices advertised.
func (s *Server) Roster() ([]KeyAdvert, error) {
	if len(s.roster) < s.cfg.T {
		return nil, fmt.Errorf("secagg: only %d adverts, need ≥ %d", len(s.roster), s.cfg.T)
	}
	if s.rosterIDs == nil {
		ids := make([]int, 0, len(s.roster))
		for id := range s.roster {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		s.rosterIDs = ids
	}
	out := make([]KeyAdvert, 0, len(s.rosterIDs))
	for _, id := range s.rosterIDs {
		out = append(out, s.roster[id])
	}
	return out, nil
}

// rosterIndex returns id's 0-based position in the sorted roster, or -1.
func (s *Server) rosterIndex(id int) int {
	for i, v := range s.rosterIDs {
		if v == id {
			return i
		}
	}
	return -1
}

// RegisterCommitments records an owner's Round-1 commitment broadcast.
// Registration is the server's "shares delivered" signal: an owner with
// no registered commitments never enters the mask set.
func (s *Server) RegisterCommitments(sc ShareCommitments) error {
	if s.rosterIDs == nil {
		return fmt.Errorf("secagg: commitments before roster freeze")
	}
	if s.maskIDs != nil {
		return fmt.Errorf("secagg: commitments after mask set freeze")
	}
	if _, ok := s.roster[sc.Owner]; !ok {
		return fmt.Errorf("secagg: commitments from unknown device %d", sc.Owner)
	}
	if _, dup := s.commits[sc.Owner]; dup {
		return fmt.Errorf("secagg: duplicate commitments from %d", sc.Owner)
	}
	if err := sc.validate(len(s.rosterIDs)); err != nil {
		s.blamed[sc.Owner] = err.Error()
		obsBlamed.Inc()
		return err
	}
	s.commits[sc.Owner] = sc
	return nil
}

// Commitments returns every registered commitment set for relay to the
// participants.
func (s *Server) Commitments() []ShareCommitments {
	out := make([]ShareCommitments, 0, len(s.commits))
	for _, id := range s.rosterIDs {
		if sc, ok := s.commits[id]; ok {
			out = append(out, sc)
		}
	}
	return out
}

// RouteShares groups the Round-1 bundles by holder for delivery. Bundles
// from unknown owners are dropped.
func (s *Server) RouteShares(all []RoutedShare) map[int][]RoutedShare {
	byHolder := make(map[int][]RoutedShare)
	for _, rs := range all {
		if _, ok := s.roster[rs.Owner]; !ok {
			continue
		}
		if _, ok := s.roster[rs.Holder]; !ok {
			continue
		}
		byHolder[rs.Holder] = append(byHolder[rs.Holder], rs)
	}
	return byHolder
}

// RegisterComplaint records a holder's report that an owner's share
// bundle failed verification. The owner is blamed and excluded when the
// mask set freezes; complaints after the freeze are rejected — a device
// whose masked input may already be in the online sum cannot be evicted.
func (s *Server) RegisterComplaint(c Complaint) error {
	if s.maskIDs != nil {
		return fmt.Errorf("secagg: complaint from %d against %d after mask set freeze", c.By, c.Against)
	}
	if _, ok := s.roster[c.By]; !ok {
		return fmt.Errorf("secagg: complaint from unknown device %d", c.By)
	}
	if _, ok := s.roster[c.Against]; !ok {
		return fmt.Errorf("secagg: complaint against unknown device %d", c.Against)
	}
	obsComplaints.Inc()
	if _, done := s.blamed[c.Against]; !done {
		s.blamed[c.Against] = fmt.Sprintf("complaint from %d: %s", c.By, c.Reason)
		obsBlamed.Inc()
	}
	return nil
}

// MaskSet freezes and returns the set U1.5 for broadcast: devices whose
// shares (commitments) arrived and that no holder blamed. Devices outside
// the set contribute no masks — their loss costs nothing at unmask time —
// and their masked inputs are refused. Fails if fewer than T remain.
func (s *Server) MaskSet() ([]int, error) {
	if s.rosterIDs == nil {
		return nil, fmt.Errorf("secagg: mask set before roster freeze")
	}
	if s.maskIDs == nil {
		ids := make([]int, 0, len(s.commits))
		set := make(map[int]bool, len(s.commits))
		for _, id := range s.rosterIDs {
			if _, ok := s.commits[id]; !ok {
				continue
			}
			if _, bad := s.blamed[id]; bad {
				continue
			}
			ids = append(ids, id)
			set[id] = true
		}
		if len(ids) < s.cfg.T {
			return nil, fmt.Errorf("secagg: only %d unblamed share-complete devices, need ≥ %d", len(ids), s.cfg.T)
		}
		obsDropouts.Add(int64(len(s.rosterIDs) - len(ids)))
		s.maskIDs, s.maskSet = ids, set
	}
	return append([]int(nil), s.maskIDs...), nil
}

// inMaskSet reports whether id participates in masking; before the freeze
// (legacy instances that never ran the commitment round) the whole roster
// does.
func (s *Server) inMaskSet(id int) bool {
	if s.maskSet == nil {
		_, ok := s.roster[id]
		return ok
	}
	return s.maskSet[id]
}

// maskMembers returns the mask-set ids (the full roster when no freeze
// happened).
func (s *Server) maskMembers() []int {
	if s.maskIDs != nil {
		return s.maskIDs
	}
	return s.rosterIDs
}

// Blamed returns the devices excluded or rejected so far, with reasons.
func (s *Server) Blamed() map[int]string {
	out := make(map[int]string, len(s.blamed))
	for id, why := range s.blamed {
		out[id] = why
	}
	return out
}

// AddMasked accumulates a Round-2 masked input into the running sum. The
// server never stores the individual vector beyond this addition.
func (s *Server) AddMasked(id int, y []uint64) error {
	if s.rosterIDs == nil {
		return fmt.Errorf("secagg: masked input before roster freeze")
	}
	if _, ok := s.roster[id]; !ok {
		return fmt.Errorf("secagg: masked input from unknown device %d", id)
	}
	if !s.inMaskSet(id) {
		return fmt.Errorf("secagg: masked input from %d, which is not in the mask set (%s)", id, s.blamed[id])
	}
	if s.maskedBy[id] {
		return fmt.Errorf("secagg: duplicate masked input from %d", id)
	}
	if len(y) != s.cfg.VectorLen {
		return fmt.Errorf("secagg: masked input length %d from %d, want %d", len(y), id, s.cfg.VectorLen)
	}
	field.AddVec(s.sum, s.sum, y)
	s.maskedBy[id] = true
	return nil
}

// Survivors returns the set U2 of devices whose masked input arrived,
// sorted. The round can proceed only if |U2| ≥ T.
func (s *Server) Survivors() ([]int, error) {
	if len(s.maskedBy) < s.cfg.T {
		return nil, fmt.Errorf("secagg: only %d masked inputs, need ≥ %d", len(s.maskedBy), s.cfg.T)
	}
	out := make([]int, 0, len(s.maskedBy))
	for id := range s.maskedBy {
		out = append(out, id)
	}
	sort.Ints(out)
	return out, nil
}

// AddUnmaskResponse validates and records a Round-3 response. The whole
// response is checked before any of it is admitted: every revealed share
// must come from a roster member, name a mask-set owner exactly once, sit
// at the responder's own evaluation point, reveal the kind matching the
// owner's survival status, and open the owner's broadcast commitment.
// Any violation rejects the entire response with an error attributing the
// responder (recorded in Blamed); reconstruction then proceeds from the
// other responders' shares, so a forger can force at most an attributed
// abort — never a wrong sum.
func (s *Server) AddUnmaskResponse(r *UnmaskResponse) error {
	if _, ok := s.roster[r.From]; !ok {
		return fmt.Errorf("secagg: unmask response from unknown device %d", r.From)
	}
	if s.unmaskFrom[r.From] {
		return fmt.Errorf("secagg: duplicate unmask response from %d", r.From)
	}
	if !s.inMaskSet(r.From) {
		return fmt.Errorf("secagg: unmask response from %d, which is not in the mask set", r.From)
	}
	idx := s.rosterIndex(r.From)
	wantX := uint64(idx + 1)
	blame := func(format string, args ...any) error {
		err := fmt.Errorf("secagg: unmask response from %d: "+format, append([]any{r.From}, args...)...)
		s.blamed[r.From] = err.Error()
		obsBlamed.Inc()
		return err
	}
	seen := make(map[int]bool, len(r.BShares)+len(r.SKShares))
	check := func(os OwnerShare, kind byte) error {
		if _, ok := s.roster[os.Owner]; !ok {
			return blame("share for non-roster device %d", os.Owner)
		}
		if !s.inMaskSet(os.Owner) {
			return blame("share for %d, which is outside the mask set", os.Owner)
		}
		if seen[os.Owner] {
			return blame("duplicate share for owner %d", os.Owner)
		}
		seen[os.Owner] = true
		if os.Share.X != wantX {
			return blame("share for %d at evaluation point %d, want own point %d", os.Owner, os.Share.X, wantX)
		}
		if kind == kindB && !s.maskedBy[os.Owner] {
			return blame("personal-seed share for dropped device %d", os.Owner)
		}
		if kind == kindSK && s.maskedBy[os.Owner] {
			return blame("masking-key share for surviving device %d — refusing to unmask an individual", os.Owner)
		}
		if com, ok := s.commits[os.Owner]; ok {
			var want []byte
			if kind == kindB {
				want = com.B[idx]
			} else {
				want = com.SK[idx]
			}
			if !verifyChunked(os.Owner, kind, os.Share, os.Blinder, want) {
				return blame("forged share for owner %d (commitment mismatch)", os.Owner)
			}
		} else if len(s.commits) > 0 {
			return blame("share for %d, whose commitments were never registered", os.Owner)
		}
		return nil
	}
	for _, os := range r.BShares {
		if err := check(os, kindB); err != nil {
			return err
		}
	}
	for _, os := range r.SKShares {
		if err := check(os, kindSK); err != nil {
			return err
		}
	}
	// Every share verified: admit the response atomically.
	s.unmaskFrom[r.From] = true
	for _, os := range r.BShares {
		s.bShares[os.Owner] = append(s.bShares[os.Owner], os.Share)
	}
	for _, os := range r.SKShares {
		s.skShares[os.Owner] = append(s.skShares[os.Owner], os.Share)
	}
	return nil
}

// Responses returns how many unmask responses were admitted.
func (s *Server) Responses() int { return len(s.unmaskFrom) }

// Sum finalizes the protocol: reconstructs personal seeds of survivors and
// masking keys of dropped mask-set devices, strips all masks, and returns
// the aggregate Σ_{u∈U2} x_u in field encoding (Decode converts to reals).
// Every share entering a reconstruction was verified on receipt, so a
// reconstruction can only fail for lack of shares — an attributed abort,
// never a silently wrong sum.
func (s *Server) Sum() ([]uint64, error) {
	survivors, err := s.Survivors()
	if err != nil {
		return nil, err
	}
	if len(s.unmaskFrom) < s.cfg.T {
		return nil, fmt.Errorf("secagg: only %d unmask responses, need ≥ %d", len(s.unmaskFrom), s.cfg.T)
	}
	out := make([]uint64, s.cfg.VectorLen)
	copy(out, s.sum)

	// Reconstruct all secrets first (cheap Shamir interpolation, serial),
	// building one task per mask expansion. The expansions — an ECDH plus a
	// PRG stream each for dropped-device pairs, a PRG stream for survivor
	// personal masks — are the O(dropped × survivors) hot path and run on
	// the worker pool, each worker folding into a private partial vector
	// merged once at the end.
	type maskTask struct {
		owner int
		peer  int              // pairwise tasks only
		seed  []byte           // PRG seed, when already known
		sk    *ecdh.PrivateKey // else derive the seed from sk × pub
		pub   []byte
		sub   bool
	}
	members := s.maskMembers()
	dropped := len(members) - len(survivors)
	tasks := make([]maskTask, 0, len(survivors)*(1+dropped))

	// Survivors' personal masks PRG(b_u) are subtracted.
	for _, u := range survivors {
		shares := s.bShares[u]
		if len(shares) < s.cfg.T {
			return nil, fmt.Errorf("secagg: %d verified personal-seed shares for %d, need %d", len(shares), u, s.cfg.T)
		}
		seed, err := reconstructBytes(shares[:s.cfg.T], s.cfg.T)
		if err != nil {
			return nil, fmt.Errorf("secagg: reconstruct seed of %d: %w", u, err)
		}
		tasks = append(tasks, maskTask{owner: u, seed: seedKey(seed), sub: true})
	}

	// Residual pairwise masks of mask-set devices that dropped after the
	// share round. Devices excluded before masking (outside the mask set)
	// left no residuals, so their loss costs nothing here.
	survSet := make(map[int]bool, len(survivors))
	for _, v := range survivors {
		survSet[v] = true
	}
	for _, u := range members {
		if survSet[u] {
			continue
		}
		shares := s.skShares[u]
		if len(shares) < s.cfg.T {
			return nil, fmt.Errorf("secagg: %d verified masking-key shares for dropped %d, need %d", len(shares), u, s.cfg.T)
		}
		skBytes, err := reconstructBytes(shares[:s.cfg.T], s.cfg.T)
		if err != nil {
			return nil, fmt.Errorf("secagg: reconstruct key of %d: %w", u, err)
		}
		sk, err := ecdh.X25519().NewPrivateKey(skBytes)
		if err != nil {
			return nil, fmt.Errorf("secagg: rebuild key of %d: %w", u, err)
		}
		for _, v := range survivors {
			// Survivor v's masked input contains +PRG(s_vu) when v<u and
			// −PRG(s_vu) when v>u; cancel that residual.
			tasks = append(tasks, maskTask{owner: u, peer: v, sk: sk, pub: s.roster[v].SPub, sub: v < u})
		}
	}

	err = parallelMasks(out, len(tasks), func(i int, acc []uint64) error {
		t := tasks[i]
		seed := t.seed
		if seed == nil {
			pub, err := ecdh.X25519().NewPublicKey(t.pub)
			if err != nil {
				return fmt.Errorf("secagg: spub of %d: %w", t.peer, err)
			}
			shared, err := t.sk.ECDH(pub)
			if err != nil {
				return fmt.Errorf("secagg: ecdh %d×%d: %w", t.owner, t.peer, err)
			}
			seed = pairwiseSeed(shared, 'p')
		}
		prgApply(seed, acc, t.sub)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
