package secagg

import (
	"strings"
	"testing"
)

// seqInputs builds inputs for devices 1..n with distinct per-device values
// so a wrong survivor set changes the sum.
func seqInputs(n, dim int) map[int][]float64 {
	inputs := make(map[int][]float64, n)
	for id := 1; id <= n; id++ {
		v := make([]float64, dim)
		for i := range v {
			v[i] = float64(id) + float64(i)/8
		}
		inputs[id] = v
	}
	return inputs
}

func span(lo, hi int) []int {
	out := make([]int, 0, hi-lo+1)
	for id := lo; id <= hi; id++ {
		out = append(out, id)
	}
	return out
}

// TestAllPhaseChurnGroupCommits is the headline robustness acceptance: a
// group of n = 64 with t = 33 loses devices at every protocol phase
// boundary — n−t = 31 in total, the theoretical maximum — including one
// poisoned-share dealer, and still commits the correct sum over the
// devices whose masked inputs arrived.
func TestAllPhaseChurnGroupCommits(t *testing.T) {
	const n, tt = 64, 33
	cfg := Config{N: n, T: tt, VectorLen: 3}
	inputs := seqInputs(n, cfg.VectorLen)

	sched := Schedule{
		DropAdvertise:  span(1, 5),   // gone before Round 0
		DropShareKeys:  span(6, 10),  // advertised, never dealt shares
		PoisonShare:    []int{11},    // dealt corrupted shares
		DropAfterShare: span(12, 21), // dealt shares, never sent masked input
		DropAfterMask:  span(22, 31), // sent masked input, never unmasked
	}
	res, err := RunSchedule(cfg, inputs, sched)
	if err != nil {
		t.Fatalf("group must commit under maximal churn: %v", err)
	}

	// Survivors are exactly the devices that sent a masked input: the
	// poisoned dealer was excluded before masking, everything before it
	// never got that far.
	wantSurv := span(22, n)
	if len(res.Survivors) != len(wantSurv) {
		t.Fatalf("survivors = %v, want %v", res.Survivors, wantSurv)
	}
	for i, id := range wantSurv {
		if res.Survivors[i] != id {
			t.Fatalf("survivors = %v, want %v", res.Survivors, wantSurv)
		}
	}
	expectSum(t, inputs, wantSurv, res.Sum)

	// Exactly t responders remained (32..64 minus the 10 unmask drops):
	// the reconstruction ran at the threshold boundary.
	if res.Responded != tt {
		t.Fatalf("responded = %d, want exactly t = %d", res.Responded, tt)
	}
	why, blamed := res.Blamed[11]
	if !blamed {
		t.Fatalf("poisoned dealer must be blamed, got %v", res.Blamed)
	}
	if !strings.Contains(why, "complaint") {
		t.Fatalf("blame for poisoned dealer should cite a holder complaint: %q", why)
	}
}

// TestPoisonedDealerBlamedAndExcluded pins the complaint flow on its own:
// one device deals shares inconsistent with its broadcast commitments,
// every holder complains, the dealer is excluded from the mask set, and
// the group commits without its input.
func TestPoisonedDealerBlamedAndExcluded(t *testing.T) {
	cfg := Config{N: 8, T: 5, VectorLen: 2}
	inputs := seqInputs(8, cfg.VectorLen)
	res, err := RunSchedule(cfg, inputs, Schedule{PoisonShare: []int{3}})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range res.Survivors {
		if id == 3 {
			t.Fatal("poisoned dealer must not survive into the sum")
		}
	}
	if len(res.Survivors) != 7 {
		t.Fatalf("survivors = %v, want the 7 honest devices", res.Survivors)
	}
	expectSum(t, inputs, res.Survivors, res.Sum)
	if _, ok := res.Blamed[3]; !ok {
		t.Fatalf("dealer 3 must be blamed, got %v", res.Blamed)
	}
}

// TestForgedUnmaskBlamedSumStillCorrect: a responder forges its Round-3
// shares. The server's commitment check rejects the whole response,
// blames the responder, and the sum still reconstructs correctly from the
// remaining honest responders — a forger can never corrupt the sum.
func TestForgedUnmaskBlamedSumStillCorrect(t *testing.T) {
	cfg := Config{N: 8, T: 5, VectorLen: 2}
	inputs := seqInputs(8, cfg.VectorLen)
	// One real dropout forces the expensive recovery path (masking-key
	// reconstruction) to run on verified shares too.
	res, err := RunSchedule(cfg, inputs, Schedule{
		DropAfterShare: []int{2},
		ForgeUnmask:    []int{6},
	})
	if err != nil {
		t.Fatal(err)
	}
	expectSum(t, inputs, res.Survivors, res.Sum)
	why, ok := res.Blamed[6]
	if !ok {
		t.Fatalf("forging responder must be blamed, got %v", res.Blamed)
	}
	if !strings.Contains(why, "forged") {
		t.Fatalf("blame should name the forgery: %q", why)
	}
	if res.Responded != 6 {
		t.Fatalf("admitted responses = %d, want 6 (7 alive minus the forger)", res.Responded)
	}
}

// TestBelowThresholdChurnAbortsCleanly: when churn leaves fewer than T
// participants at any phase, the run degrades to an attributed abort —
// never a stall, never a wrong sum — and the Result still carries the
// blame map and response count for the caller's metrics.
func TestBelowThresholdChurnAbortsCleanly(t *testing.T) {
	cfg := Config{N: 8, T: 5, VectorLen: 2}
	inputs := seqInputs(8, cfg.VectorLen)
	cases := []struct {
		name  string
		sched Schedule
		phase string
	}{
		{"share round", Schedule{DropShareKeys: span(1, 4)}, "masked-input"},
		{"mask round", Schedule{DropAfterShare: span(1, 4)}, "unmask"},
		{"unmask round", Schedule{DropAfterMask: span(1, 4)}, "reconstruction"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := RunSchedule(cfg, inputs, tc.sched)
			if err == nil {
				t.Fatal("below-threshold churn must abort")
			}
			if !strings.Contains(err.Error(), "abort") || !strings.Contains(err.Error(), tc.phase) {
				t.Fatalf("abort must be attributed to the %s phase: %v", tc.phase, err)
			}
			if res == nil {
				t.Fatal("abort must still return the metric-carrying result")
			}
			if res.Sum != nil {
				t.Fatal("aborted run must not leak a sum")
			}
		})
	}
}

// TestMalformedInputTreatedAsDropout: a mask-set member whose update is
// missing or the wrong length degrades to a DropAfterShare dropout —
// the group commits without it instead of stalling or aborting.
func TestMalformedInputTreatedAsDropout(t *testing.T) {
	cfg := Config{N: 6, T: 4, VectorLen: 2}
	inputs := seqInputs(6, cfg.VectorLen)
	inputs[4] = nil                // lost before reporting
	inputs[5] = []float64{1, 2, 3} // wrong dimension
	res, err := RunSchedule(cfg, inputs, Schedule{})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3, 6}
	if len(res.Survivors) != len(want) {
		t.Fatalf("survivors = %v, want %v", res.Survivors, want)
	}
	for i, id := range want {
		if res.Survivors[i] != id {
			t.Fatalf("survivors = %v, want %v", res.Survivors, want)
		}
	}
	expectSum(t, inputs, want, res.Sum)
}
