package secagg

import (
	"fmt"
	"time"
)

// Schedule injects fleet churn and adversarial behaviour into an in-process
// Secure Aggregation run, one knob per protocol phase boundary. Device ids
// listed here refer to keys of the inputs map.
type Schedule struct {
	// DropAdvertise devices vanish before Round 0: they never advertise
	// keys and never enter the roster.
	DropAdvertise []int
	// DropShareKeys devices advertise but vanish during Round 1: they
	// deliver no shares or commitments, so the mask set excludes them and
	// their loss costs nothing at unmask time.
	DropShareKeys []int
	// DropAfterShare devices deliver shares but vanish before Round 2:
	// the expensive recovery path — survivors reveal their masking-key
	// shares and the server reconstructs the residual pairwise masks.
	DropAfterShare []int
	// DropAfterMask devices send a masked input but never answer Round 3:
	// tolerated as long as ≥ T others answer.
	DropAfterMask []int
	// PoisonShare devices deal corrupted share bundles: every holder's
	// verification fails, the holders complain, and the device is blamed
	// and excluded from the mask set before masking.
	PoisonShare []int
	// ForgeUnmask devices answer Round 3 with forged shares: the server's
	// commitment check rejects the whole response, blames the responder,
	// and reconstructs from the remaining responders.
	ForgeUnmask []int
}

func toSet(ids []int) map[int]bool {
	m := make(map[int]bool, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return m
}

// Result is the outcome of one Secure Aggregation instance.
type Result struct {
	// Sum is the decoded aggregate over Survivors (nil on abort).
	Sum []float64
	// Survivors are the devices whose inputs are included in Sum.
	Survivors []int
	// Blamed maps excluded or rejected devices to an attributed reason.
	// Populated on abort too, so callers can report who sank the group.
	Blamed map[int]string
	// Responded is the number of admitted unmask responses.
	Responded int
	// Phases maps protocol phase name (advertise, share, commit, unmask)
	// to wall time spent in it, for the round tracer. On abort it holds
	// the phases that completed before the failure.
	Phases map[string]time.Duration
}

// Secure Aggregation phase names as recorded in Result.Phases. They match
// the obs round-trace secagg span names minus the "secagg_" prefix.
const (
	phaseAdvertise = "advertise"
	phaseShare     = "share"
	phaseCommit    = "commit"
	phaseUnmask    = "unmask"
)

// Run executes a complete honest-but-churning instance: the legacy
// two-knob entry point kept for the benchmarks and older callers. See
// RunSchedule for the full churn and adversary surface.
func Run(cfg Config, inputs map[int][]float64, dropAfterShare, dropAfterMask []int) ([]float64, []int, error) {
	res, err := RunSchedule(cfg, inputs, Schedule{
		DropAfterShare: dropAfterShare,
		DropAfterMask:  dropAfterMask,
	})
	if err != nil {
		return nil, nil, err
	}
	return res.Sum, res.Survivors, nil
}

// RunSchedule executes a complete Secure Aggregation instance in-process
// under an injected churn schedule. It exists for the Aggregator actor,
// the simulator, and the benchmarks: the caller hands it per-group inputs
// plus a Schedule, and receives the group sum with attribution.
//
// On abort (below-threshold churn at any phase) the returned error is
// attributed and the Result still carries Blamed and Responded so callers
// can propagate who and what sank the group. The instance never stalls: a
// device is either on a drop list or participates to completion.
func RunSchedule(cfg Config, inputs map[int][]float64, sched Schedule) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dropAdv := toSet(sched.DropAdvertise)
	dropShareKeys := toSet(sched.DropShareKeys)
	dropShare := toSet(sched.DropAfterShare)
	dropMask := toSet(sched.DropAfterMask)
	poison := toSet(sched.PoisonShare)
	forge := toSet(sched.ForgeUnmask)

	srv, err := NewServer(cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{Blamed: map[int]string{}, Phases: map[string]time.Duration{}}
	last := time.Now()
	mark := func(phase string) {
		now := time.Now()
		res.Phases[phase] = now.Sub(last)
		last = now
	}
	fail := func(err error) (*Result, error) {
		res.Blamed = srv.Blamed()
		res.Responded = srv.Responses()
		return res, err
	}

	// Round 0: advertise keys. DropAdvertise devices never show up.
	clients := make(map[int]*Client, len(inputs))
	for id := range inputs {
		if dropAdv[id] {
			continue
		}
		c, err := NewClient(id, cfg)
		if err != nil {
			return nil, err
		}
		clients[id] = c
		if err := srv.RegisterAdvert(c.Advertise()); err != nil {
			return nil, err
		}
	}
	roster, err := srv.Roster()
	if err != nil {
		return fail(fmt.Errorf("secagg: abort before share round: %w", err))
	}
	for _, c := range clients {
		if err := c.ReceiveRoster(roster); err != nil {
			return nil, err
		}
	}
	mark(phaseAdvertise)

	// Round 1: share keys + broadcast commitments. DropShareKeys devices
	// vanish here; PoisonShare devices deal corrupted bundles.
	var allShares []RoutedShare
	for id, c := range clients {
		if dropShareKeys[id] {
			continue
		}
		c.poison = poison[id]
		rs, err := c.ShareKeys()
		if err != nil {
			return nil, err
		}
		allShares = append(allShares, rs...)
		sc, err := c.Commitments()
		if err != nil {
			return nil, err
		}
		if err := srv.RegisterCommitments(sc); err != nil {
			return nil, err
		}
	}
	allCommits := srv.Commitments()
	for id, c := range clients {
		if dropShareKeys[id] {
			continue
		}
		if err := c.ReceiveCommitments(allCommits); err != nil {
			return nil, err
		}
	}
	byHolder := srv.RouteShares(allShares)
	for holder, c := range clients {
		if dropShareKeys[holder] {
			continue
		}
		complaints, err := c.ReceiveShares(byHolder[holder])
		if err != nil {
			return nil, err
		}
		for _, cm := range complaints {
			if err := srv.RegisterComplaint(cm); err != nil {
				return nil, err
			}
		}
	}

	// Round 1.5: freeze and broadcast the mask set — devices whose shares
	// arrived intact and unblamed. Below-threshold churn aborts here.
	maskIDs, err := srv.MaskSet()
	if err != nil {
		return fail(fmt.Errorf("secagg: abort before masked-input round: %w", err))
	}
	maskSet := toSet(maskIDs)
	for _, id := range maskIDs {
		if err := clients[id].ReceiveMaskSet(maskIDs); err != nil {
			return nil, err
		}
	}
	mark(phaseShare)

	// Round 2: masked inputs. DropAfterShare devices — and devices whose
	// input is missing or malformed — vanish here rather than stalling or
	// aborting the group.
	for _, id := range maskIDs {
		if dropShare[id] {
			continue
		}
		in := inputs[id]
		if len(in) != cfg.VectorLen {
			dropShare[id] = true
			continue
		}
		y, err := clients[id].MaskedInput(in)
		if err != nil {
			return nil, err
		}
		if err := srv.AddMasked(id, y); err != nil {
			return nil, err
		}
	}
	survivors, err := srv.Survivors()
	if err != nil {
		return fail(fmt.Errorf("secagg: abort before unmask round: %w", err))
	}
	mark(phaseCommit)

	// Round 3: unmask. DropAfterMask devices vanish; ForgeUnmask devices
	// send forged shares, get blamed, and are skipped — the sum still
	// reconstructs from the remaining honest responders.
	for _, id := range maskIDs {
		if dropShare[id] || dropMask[id] || !maskSet[id] {
			continue
		}
		c := clients[id]
		c.forge = forge[id]
		resp, err := c.Unmask(survivors)
		if err != nil {
			return nil, err
		}
		if err := srv.AddUnmaskResponse(resp); err != nil {
			// Attributed rejection (recorded in srv.Blamed): drop this
			// responder's contribution and continue with the rest.
			continue
		}
	}

	sum, err := srv.Sum()
	if err != nil {
		return fail(fmt.Errorf("secagg: abort at reconstruction: %w", err))
	}
	res.Sum = Decode(sum)
	res.Survivors = survivors
	res.Blamed = srv.Blamed()
	res.Responded = srv.Responses()
	mark(phaseUnmask)
	return res, nil
}
