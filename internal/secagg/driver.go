package secagg

import "fmt"

// Run executes a complete Secure Aggregation instance in-process. It exists
// for the Aggregator actor and the benchmarks: the aggregator hands it the
// per-group inputs and dropout schedule, and receives the group sum.
//
// inputs maps device id → update vector. dropAfterShare lists devices that
// vanish after distributing shares but before sending a masked input (the
// interesting recovery path: their pairwise masks must be reconstructed).
// dropAfterMask lists devices that send a masked input but never answer the
// unmask round (tolerated as long as ≥ T others answer).
//
// It returns Decode of the aggregate and the survivor ids included in it.
func Run(cfg Config, inputs map[int][]float64, dropAfterShare, dropAfterMask []int) ([]float64, []int, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	dropShare := make(map[int]bool, len(dropAfterShare))
	for _, id := range dropAfterShare {
		dropShare[id] = true
	}
	dropMask := make(map[int]bool, len(dropAfterMask))
	for _, id := range dropAfterMask {
		dropMask[id] = true
	}

	srv, err := NewServer(cfg)
	if err != nil {
		return nil, nil, err
	}

	// Round 0: advertise keys.
	clients := make(map[int]*Client, len(inputs))
	for id := range inputs {
		c, err := NewClient(id, cfg)
		if err != nil {
			return nil, nil, err
		}
		clients[id] = c
		if err := srv.RegisterAdvert(c.Advertise()); err != nil {
			return nil, nil, err
		}
	}
	roster, err := srv.Roster()
	if err != nil {
		return nil, nil, err
	}
	for _, c := range clients {
		if err := c.ReceiveRoster(roster); err != nil {
			return nil, nil, err
		}
	}

	// Round 1: share keys.
	var allShares []RoutedShare
	for _, c := range clients {
		rs, err := c.ShareKeys()
		if err != nil {
			return nil, nil, err
		}
		allShares = append(allShares, rs...)
	}
	for holder, rs := range srv.RouteShares(allShares) {
		if err := clients[holder].ReceiveShares(rs); err != nil {
			return nil, nil, err
		}
	}

	// Round 2: masked inputs (dropAfterShare devices vanish here).
	for id, c := range clients {
		if dropShare[id] {
			continue
		}
		y, err := c.MaskedInput(inputs[id])
		if err != nil {
			return nil, nil, err
		}
		if err := srv.AddMasked(id, y); err != nil {
			return nil, nil, err
		}
	}
	survivors, err := srv.Survivors()
	if err != nil {
		return nil, nil, err
	}

	// Round 3: unmask (dropAfterMask devices vanish here).
	responded := 0
	for _, id := range survivors {
		if dropMask[id] {
			continue
		}
		resp, err := clients[id].Unmask(survivors)
		if err != nil {
			return nil, nil, err
		}
		if err := srv.AddUnmaskResponse(resp); err != nil {
			return nil, nil, err
		}
		responded++
	}
	if responded < cfg.T {
		return nil, nil, fmt.Errorf("secagg: only %d unmask responses, need ≥ %d", responded, cfg.T)
	}

	sum, err := srv.Sum()
	if err != nil {
		return nil, nil, err
	}
	return Decode(sum), survivors, nil
}
