// Package robust implements pluggable robust aggregation policies: the
// defenses against model poisoning that replace (or bound) the plain
// weighted mean of Sec. 2.2 when a task's plan asks for them
// (plan.RobustPolicy). The policy catalogue follows the robust-aggregation
// literature surveyed in "Advances and Open Problems in Federated
// Learning" (arXiv 1912.04977 §5) and the FL security survey
// (arXiv 2012.06810):
//
//   - norm bounding: clip each update's per-example-average L2 norm so no
//     single device can out-shout the cohort. Folds at the edge of the
//     striped accumulator path (checkpoint.Meta.ParamNorm +
//     AccumulateParamsScaled) and composes with secure aggregation via
//     client-side clipping — this package only supplies the arithmetic
//     (ClipScale).
//   - coordinate-wise trimmed mean / median: order statistics over the
//     per-example-average updates, immune to any minority of arbitrarily
//     scaled values per coordinate. Require per-update retention (Buffer).
//   - cosine outlier rejection: drop whole updates whose direction strays
//     too far from the cohort centroid, then average the survivors.
//
// The reduce is pure (Reduce); the concurrent retention buffer that the
// server's report hot loop fills lives in Buffer. All per-update policies
// operate on per-example-average updates u_i = Δ_i / n_i — the same
// normalized quantity fedavg.ClipUpdate bounds — so a device cannot evade
// an order statistic by inflating its example count.
package robust

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/plan"
	"repro/internal/tensor"
)

// Update is one device's buffered weighted update: Delta = n·(w − w_init)
// with Weight = n, exactly what rides in an update checkpoint.
type Update struct {
	Device string
	Weight float64
	Delta  tensor.Vector
}

// Rejection attributes one defensive exclusion to a device, so operators
// can distinguish defense hits from churn (msgRoundComplete threads these
// next to BlamedDevices).
type Rejection struct {
	Device string
	Reason string
}

// Result is the outcome of a robust reduce, shaped to drop into the
// fedavg pipeline: Sum/Weight/Count feed Accumulator.AddRaw, and
// downstream Average recovers the robust aggregate (Sum is pre-scaled so
// Sum/Weight IS the policy's mean). Result vectors never alias the input
// updates, so pooled buffers can be released immediately after Reduce.
type Result struct {
	Sum    tensor.Vector
	Weight float64
	// Count is the number of updates that contributed to the aggregate.
	Count int
	// Rejected attributes defensive exclusions: whole-update rejections
	// for cosine_outlier and non-finite screening, dominant-tail
	// attribution for the order statistics (see Reduce).
	Rejected []Rejection
	// Clipped counts updates scaled down by norm bounding.
	Clipped int
	// Trimmed counts per-coordinate values excluded from the order
	// statistic's support (trimmed_mean and median).
	Trimmed int64
}

// ClipScale returns the factor that scales a weighted delta of L2 norm
// deltaNorm and weight n so its per-example average Δ/n has norm at most
// clip — fedavg.ClipUpdate's arithmetic, split out so the Reporting edge
// can clip from a streaming norm (checkpoint.Meta.ParamNorm) without
// materializing the update. Returns 1 when no clipping is needed.
func ClipScale(deltaNorm, weight, clip float64) float64 {
	if weight <= 0 || clip <= 0 || deltaNorm <= clip*weight {
		return 1
	}
	return clip * weight / deltaNorm
}

// Reduce applies the policy to a cohort of updates. Every kind is
// implemented — RobustNone and RobustNormBound reduce to the (clipped)
// weighted mean, so callers like the experiments grid can run any policy
// through one entry point — but the server only routes per-update
// policies here; norm bounding folds at the edge instead.
//
// Updates containing non-finite values are screened out (and attributed)
// before any policy runs: a single NaN would otherwise poison every sum
// and defeat the order statistics it sorts through.
func Reduce(policy plan.RobustPolicy, dim int, updates []Update) Result {
	res := Result{Sum: make(tensor.Vector, dim)}
	kept := updates[:0:0]
	for _, u := range updates {
		if u.Weight <= 0 || !finite(u.Delta) {
			res.Rejected = append(res.Rejected, Rejection{u.Device, "non-finite or non-positive-weight update"})
			continue
		}
		kept = append(kept, u)
	}
	if len(kept) == 0 {
		return res
	}
	switch policy.Kind {
	case plan.RobustTrimmedMean, plan.RobustMedian:
		reduceOrderStat(policy, dim, kept, &res)
	case plan.RobustCosineOutlier:
		reduceCosine(policy, kept, &res)
	default: // RobustNone, RobustNormBound: (clipped) weighted mean.
		for _, u := range kept {
			scale := 1.0
			if policy.Kind == plan.RobustNormBound {
				scale = ClipScale(u.Delta.Norm2(), u.Weight, policy.ClipNorm)
				if scale < 1 {
					res.Clipped++
				}
			}
			res.Sum.Axpy(scale, u.Delta)
			res.Weight += u.Weight
			res.Count++
		}
	}
	return res
}

// reduceOrderStat computes the coordinate-wise trimmed mean or median of
// the per-example-average updates, scaled back so Sum/Weight equals the
// robust mean. Attribution: a device that is the extreme (max or min)
// value in a majority of coordinates is dominating the trimmed tails and
// gets named in Rejected — its mass still contributes wherever it was not
// trimmed, so this is observability, not exclusion.
func reduceOrderStat(policy plan.RobustPolicy, dim int, kept []Update, res *Result) {
	k := len(kept)
	col := make([]float64, k)     // per-example-average values, device order
	scratch := make([]float64, k) // sorted copy
	extremal := make([]int, k)
	invW := make([]float64, k)
	var totalWeight float64
	for i, u := range kept {
		invW[i] = 1 / u.Weight
		totalWeight += u.Weight
	}
	trim := 0
	if policy.Kind == plan.RobustTrimmedMean {
		trim = int(policy.TrimFraction * float64(k))
	}
	for j := 0; j < dim; j++ {
		for i, u := range kept {
			col[i] = u.Delta[j] * invW[i]
		}
		copy(scratch, col)
		sort.Float64s(scratch)
		var center float64
		if policy.Kind == plan.RobustMedian {
			if k%2 == 1 {
				center = scratch[k/2]
			} else {
				center = (scratch[k/2-1] + scratch[k/2]) / 2
			}
			res.Trimmed += int64(k - 2 + k%2)
		} else {
			lo, hi := trim, k-trim
			var s float64
			for _, v := range scratch[lo:hi] {
				s += v
			}
			center = s / float64(hi-lo)
			res.Trimmed += int64(2 * trim)
		}
		res.Sum[j] = center * totalWeight
		if k > 1 {
			for i, v := range col {
				if v == scratch[0] || v == scratch[k-1] {
					extremal[i]++
				}
			}
		}
	}
	res.Weight = totalWeight
	res.Count = k
	for i, n := range extremal {
		if dim > 0 && n*2 > dim {
			res.Rejected = append(res.Rejected, Rejection{kept[i].Device,
				fmt.Sprintf("%s: extremal in %d%% of coordinates", policy.Kind, n*100/dim)})
		}
	}
}

// reduceCosine rejects updates whose cosine distance to the cohort
// centroid (the mean of the direction-normalized updates) exceeds the
// policy threshold, then weighted-averages the survivors. Zero updates
// carry no direction and are kept — they cannot steer the model.
func reduceCosine(policy plan.RobustPolicy, kept []Update, res *Result) {
	dim := len(res.Sum)
	centroid := make(tensor.Vector, dim)
	norms := make([]float64, len(kept))
	for i, u := range kept {
		norms[i] = u.Delta.Norm2()
		if norms[i] > 0 {
			centroid.Axpy(1/norms[i], u.Delta)
		}
	}
	cNorm := centroid.Norm2()
	for i, u := range kept {
		if norms[i] > 0 && cNorm > 0 {
			cos := u.Delta.Dot(centroid) / (norms[i] * cNorm)
			if d := 1 - cos; d > policy.MaxCosineDistance {
				res.Rejected = append(res.Rejected, Rejection{u.Device,
					fmt.Sprintf("cosine distance %.3f > %.3f", d, policy.MaxCosineDistance)})
				continue
			}
		}
		res.Sum.Axpy(1, u.Delta)
		res.Weight += u.Weight
		res.Count++
	}
}

func finite(v tensor.Vector) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}
