package robust

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/tensor"
)

func TestBufferAddDrainRelease(t *testing.T) {
	b := NewBuffer(3)
	for i := 0; i < 4; i++ {
		i := i
		err := b.Add(fmt.Sprintf("d%d", i), float64(i+1), map[string]float64{"loss": float64(i)},
			func(dst tensor.Vector) error {
				for j := range dst {
					dst[j] = float64(i)
				}
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := b.AddEval(map[string]float64{"acc": 0.5}); err != nil {
		t.Fatal(err)
	}
	if got := b.Reports(); got != 5 {
		t.Fatalf("Reports = %d, want 5", got)
	}
	updates, evalCount, metrics := b.Drain()
	if len(updates) != 4 || evalCount != 1 {
		t.Fatalf("Drain: %d updates, %d evals", len(updates), evalCount)
	}
	if len(metrics["loss"]) != 4 || len(metrics["acc"]) != 1 {
		t.Fatalf("metrics: %v", metrics)
	}
	for i, u := range updates {
		if u.Delta[0] != float64(i) || u.Weight != float64(i+1) {
			t.Fatalf("update %d: %+v", i, u)
		}
	}
	Release(updates)
	// Closed buffer refuses late adds.
	err := b.Add("late", 1, nil, func(dst tensor.Vector) error { return nil })
	if !errors.Is(err, ErrBufferClosed) {
		t.Fatalf("late add error = %v, want ErrBufferClosed", err)
	}
	if !errors.Is(b.AddEval(nil), ErrBufferClosed) {
		t.Fatal("late eval must be refused")
	}
}

func TestBufferDecodeErrorDiscards(t *testing.T) {
	b := NewBuffer(2)
	boom := errors.New("boom")
	if err := b.Add("d", 1, nil, func(tensor.Vector) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want decode error surfaced", err)
	}
	if b.Reports() != 0 {
		t.Fatal("failed decode must not be buffered")
	}
	if err := b.Add("w", 0, nil, func(tensor.Vector) error { return nil }); err == nil {
		t.Fatal("non-positive weight must be refused")
	}
}

// Pooled decode buffers are handed out zeroed even after recycling.
func TestBufferPooledVectorsZeroed(t *testing.T) {
	b := NewBuffer(4)
	_ = b.Add("d0", 1, nil, func(dst tensor.Vector) error {
		for j := range dst {
			dst[j] = 99
		}
		return nil
	})
	updates, _, _ := b.Drain()
	Release(updates)

	b2 := NewBuffer(4)
	err := b2.Add("d1", 1, nil, func(dst tensor.Vector) error {
		for j, v := range dst {
			if v != 0 {
				return fmt.Errorf("recycled buffer not zeroed at %d: %v", j, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Many goroutines adding while the buffer closes: no lost updates before
// the close, every add after it refused, no races (run with -race).
func TestBufferConcurrentAddsAndClose(t *testing.T) {
	b := NewBuffer(8)
	const goroutines = 16
	var wg sync.WaitGroup
	accepted := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				err := b.Add(fmt.Sprintf("g%d-%d", g, i), 1, nil, func(dst tensor.Vector) error {
					dst[0] = float64(i)
					return nil
				})
				if err == nil {
					accepted[g]++
				} else if !errors.Is(err, ErrBufferClosed) {
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
		}()
	}
	b.Close()
	wg.Wait()
	updates, _, _ := b.Drain()
	total := 0
	for _, n := range accepted {
		total += n
	}
	if len(updates) != total {
		t.Fatalf("drained %d updates, %d adds accepted", len(updates), total)
	}
	Release(updates)
}
