package robust

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/tensor"
)

// ErrBufferClosed is returned by a Buffer once the round's reporting
// window has closed — the mirror of fedavg.ErrPartialClosed for the
// retention path, so a late report is refused rather than silently lost.
var ErrBufferClosed = errors.New("robust: buffer closed")

// Buffer is the per-update retention counterpart of a
// fedavg.PartialAccumulator stripe: where a stripe folds each report into
// a running sum at the edge, a per-update robust policy (trimmed mean,
// median, cosine outlier) must see every individual update at finalize,
// so the report readers decode into pooled vectors and park them here.
// One Buffer serves the whole round (policies are order statistics over
// the full cohort — striping it would change the answer); the decode
// happens outside the lock, so the critical section is a pointer append.
type Buffer struct {
	mu        sync.Mutex
	closed    bool
	dim       int
	updates   []Update
	evalCount int
	metrics   map[string][]float64
}

// NewBuffer returns a retention buffer for dim-dimensional updates.
func NewBuffer(dim int) *Buffer {
	return &Buffer{dim: dim}
}

// Add decodes one device's update into a pooled vector (decode is called
// with a zeroed dim-length buffer, outside the buffer lock — typically
// checkpoint.Meta.DecodeParams) and retains it for the finalize reduce.
// Returns ErrBufferClosed once the reporting window has closed.
func (b *Buffer) Add(device string, weight float64, metrics map[string]float64, decode func(dst tensor.Vector) error) error {
	if weight <= 0 {
		return fmt.Errorf("robust: non-positive update weight %v", weight)
	}
	vec := getVec(b.dim)
	if err := decode(vec); err != nil {
		putVec(vec)
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		putVec(vec)
		return ErrBufferClosed
	}
	b.updates = append(b.updates, Update{Device: device, Weight: weight, Delta: vec})
	b.addMetricsLocked(metrics)
	return nil
}

// AddEval folds a metrics-only (evaluation) report in.
func (b *Buffer) AddEval(metrics map[string]float64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrBufferClosed
	}
	b.evalCount++
	b.addMetricsLocked(metrics)
	return nil
}

func (b *Buffer) addMetricsLocked(metrics map[string]float64) {
	if len(metrics) == 0 {
		return
	}
	if b.metrics == nil {
		b.metrics = make(map[string][]float64)
	}
	for name, v := range metrics {
		b.metrics[name] = append(b.metrics[name], v)
	}
}

// Reports returns how many reports (updates plus metrics-only) have been
// buffered so far. Safe to call while adds are in flight.
func (b *Buffer) Reports() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.updates) + b.evalCount
}

// Close seals the buffer: subsequent adds return ErrBufferClosed.
func (b *Buffer) Close() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
}

// Drain closes the buffer (if not already closed) and hands off its
// contents for the finalize reduce. The update vectors are pooled: call
// Release once the reduce no longer needs them.
func (b *Buffer) Drain() (updates []Update, evalCount int, metrics map[string][]float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	return b.updates, b.evalCount, b.metrics
}

// Release returns drained update vectors to the pool. Reduce results
// never alias them, so this is safe immediately after the reduce.
func Release(updates []Update) {
	for i := range updates {
		putVec(updates[i].Delta)
		updates[i].Delta = nil
	}
}

// vecPool recycles decode buffers across rounds, mirroring the report
// path's update buffer pool: steady-state retention rounds allocate no
// O(dim) vectors per report.
var vecPool sync.Pool

func getVec(dim int) tensor.Vector {
	if v, ok := vecPool.Get().(tensor.Vector); ok && cap(v) >= dim {
		v = v[:dim]
		v.Zero()
		return v
	}
	return make(tensor.Vector, dim)
}

func putVec(v tensor.Vector) {
	if v != nil {
		vecPool.Put(v[:cap(v)])
	}
}
