package robust

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/plan"
	"repro/internal/tensor"
)

func mkUpdates(k, dim int, seed int64) []Update {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Update, k)
	for i := range out {
		w := 1 + float64(rng.Intn(5))
		delta := make(tensor.Vector, dim)
		for j := range delta {
			delta[j] = w * (rng.NormFloat64())
		}
		out[i] = Update{Device: fmt.Sprintf("d%d", i), Weight: w, Delta: delta}
	}
	return out
}

// referenceOrderStat computes the sorted-sample reference per coordinate:
// sort the per-example-average values, trim (or take the median), and
// average what remains.
func referenceOrderStat(kind plan.RobustKind, trimFraction float64, updates []Update, dim int) tensor.Vector {
	k := len(updates)
	out := make(tensor.Vector, dim)
	for j := 0; j < dim; j++ {
		vals := make([]float64, k)
		for i, u := range updates {
			vals[i] = u.Delta[j] / u.Weight
		}
		sort.Float64s(vals)
		if kind == plan.RobustMedian {
			if k%2 == 1 {
				out[j] = vals[k/2]
			} else {
				out[j] = (vals[k/2-1] + vals[k/2]) / 2
			}
			continue
		}
		t := int(trimFraction * float64(k))
		var s float64
		for _, v := range vals[t : k-t] {
			s += v
		}
		out[j] = s / float64(k-2*t)
	}
	return out
}

// Property: the trimmed-mean reduce equals the sorted-sample reference per
// coordinate — including over adversarial cohorts where a fraction of the
// updates are arbitrarily scaled.
func TestTrimmedMeanMatchesSortedReferenceProperty(t *testing.T) {
	f := func(seed int64, kRaw, dimRaw uint8, attackersRaw uint8) bool {
		k := 3 + int(kRaw)%20
		dim := 1 + int(dimRaw)%16
		updates := mkUpdates(k, dim, seed)
		// Adversarial cohort: scale a minority of updates enormously.
		attackers := int(attackersRaw) % (k/4 + 1)
		for i := 0; i < attackers; i++ {
			updates[i].Delta.Scale(-1e6)
		}
		policy := plan.RobustPolicy{Kind: plan.RobustTrimmedMean, TrimFraction: 0.25}
		res := Reduce(policy, dim, updates)
		if res.Count != k {
			return false
		}
		want := referenceOrderStat(plan.RobustTrimmedMean, 0.25, updates, dim)
		for j := 0; j < dim; j++ {
			got := res.Sum[j] / res.Weight
			if math.Abs(got-want[j]) > 1e-9*(1+math.Abs(want[j])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: the median reduce equals the sorted-sample reference.
func TestMedianMatchesSortedReferenceProperty(t *testing.T) {
	f := func(seed int64, kRaw, dimRaw uint8) bool {
		k := 1 + int(kRaw)%20
		dim := 1 + int(dimRaw)%16
		updates := mkUpdates(k, dim, seed)
		policy := plan.RobustPolicy{Kind: plan.RobustMedian}
		res := Reduce(policy, dim, updates)
		want := referenceOrderStat(plan.RobustMedian, 0, updates, dim)
		for j := 0; j < dim; j++ {
			got := res.Sum[j] / res.Weight
			if math.Abs(got-want[j]) > 1e-9*(1+math.Abs(want[j])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// The trimmed mean with TrimFraction 0.25 must be immune to 20% of
// devices sending arbitrarily scaled updates: the robust aggregate stays
// within the honest values' range per coordinate.
func TestTrimmedMeanBoundsScaledAttack(t *testing.T) {
	updates := mkUpdates(10, 8, 7)
	for i := 0; i < 2; i++ {
		updates[i].Delta.Scale(1e9)
	}
	res := Reduce(plan.RobustPolicy{Kind: plan.RobustTrimmedMean, TrimFraction: 0.25}, 8, updates)
	for j := 0; j < 8; j++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, u := range updates[2:] {
			v := u.Delta[j] / u.Weight
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		got := res.Sum[j] / res.Weight
		if got < lo || got > hi {
			t.Fatalf("coordinate %d: trimmed mean %v outside honest range [%v, %v]", j, got, lo, hi)
		}
	}
	// The two attackers dominate the tails and must be attributed.
	names := map[string]bool{}
	for _, r := range res.Rejected {
		names[r.Device] = true
	}
	if !names["d0"] || !names["d1"] {
		t.Fatalf("scaled attackers not attributed: %v", res.Rejected)
	}
}

func TestClipScale(t *testing.T) {
	// Per-example average norm = deltaNorm/weight = 10/2 = 5 > clip 1 →
	// scale 1·2/10.
	if got := ClipScale(10, 2, 1); got != 0.2 {
		t.Fatalf("ClipScale(10,2,1) = %v, want 0.2", got)
	}
	if got := ClipScale(1.9, 2, 1); got != 1 {
		t.Fatalf("ClipScale under bound = %v, want 1", got)
	}
	if got := ClipScale(10, 0, 1); got != 1 {
		t.Fatalf("ClipScale zero weight = %v, want 1", got)
	}
}

// ClipScale must agree with fedavg.ClipUpdate's arithmetic: clipping via
// the streaming scale gives the same vector as clipping the materialized
// update.
func TestClipScaleMatchesClipUpdateProperty(t *testing.T) {
	f := func(seed int64) bool {
		updates := mkUpdates(1, 6, seed)
		u := updates[0]
		clip := 0.5
		scale := ClipScale(u.Delta.Norm2(), u.Weight, clip)
		scaled := u.Delta.Clone()
		scaled.Scale(scale)
		if norm := scaled.Norm2() / u.Weight; norm > clip*(1+1e-12) {
			return false
		}
		// Unclipped updates pass through untouched.
		if scale == 1 && u.Delta.Norm2()/u.Weight > clip {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNormBoundReduceClipsOnlyOverNorm(t *testing.T) {
	dim := 4
	honest := Update{Device: "h", Weight: 2, Delta: tensor.Vector{0.2, 0, 0, 0}}   // avg norm 0.1
	attacker := Update{Device: "a", Weight: 1, Delta: tensor.Vector{100, 0, 0, 0}} // avg norm 100
	res := Reduce(plan.RobustPolicy{Kind: plan.RobustNormBound, ClipNorm: 1}, dim, []Update{honest, attacker})
	if res.Clipped != 1 {
		t.Fatalf("Clipped = %d, want 1", res.Clipped)
	}
	// Attacker contributes exactly clip×weight of delta mass.
	want := 0.2 + 1.0
	if math.Abs(res.Sum[0]-want) > 1e-12 {
		t.Fatalf("Sum[0] = %v, want %v", res.Sum[0], want)
	}
}

func TestCosineOutlierRejectsOppositeUpdate(t *testing.T) {
	dim := 3
	updates := []Update{
		{Device: "h1", Weight: 1, Delta: tensor.Vector{1, 1, 0}},
		{Device: "h2", Weight: 1, Delta: tensor.Vector{1, 0.9, 0.1}},
		{Device: "h3", Weight: 1, Delta: tensor.Vector{0.9, 1, -0.1}},
		{Device: "evil", Weight: 1, Delta: tensor.Vector{-5, -5, 0}},
	}
	res := Reduce(plan.RobustPolicy{Kind: plan.RobustCosineOutlier, MaxCosineDistance: 0.5}, dim, updates)
	if res.Count != 3 {
		t.Fatalf("Count = %d, want 3", res.Count)
	}
	if len(res.Rejected) != 1 || res.Rejected[0].Device != "evil" {
		t.Fatalf("Rejected = %v, want evil", res.Rejected)
	}
	if res.Weight != 3 {
		t.Fatalf("Weight = %v, want 3 (rejected update's weight excluded)", res.Weight)
	}
}

func TestReduceScreensNonFinite(t *testing.T) {
	updates := []Update{
		{Device: "ok", Weight: 1, Delta: tensor.Vector{1, 2}},
		{Device: "nan", Weight: 1, Delta: tensor.Vector{math.NaN(), 0}},
		{Device: "inf", Weight: 1, Delta: tensor.Vector{math.Inf(1), 0}},
	}
	for _, kind := range []plan.RobustKind{plan.RobustNone, plan.RobustTrimmedMean, plan.RobustMedian, plan.RobustCosineOutlier} {
		policy := plan.RobustPolicy{Kind: kind, TrimFraction: 0.25, MaxCosineDistance: 1}
		res := Reduce(policy, 2, updates)
		if res.Count != 1 || len(res.Rejected) != 2 {
			t.Fatalf("%s: Count=%d Rejected=%v, want 1 kept, 2 screened", kind, res.Count, res.Rejected)
		}
		if !finite(res.Sum) {
			t.Fatalf("%s: non-finite sum %v", kind, res.Sum)
		}
	}
}

func TestReduceEmptyAndAllRejected(t *testing.T) {
	res := Reduce(plan.RobustPolicy{Kind: plan.RobustMedian}, 3, nil)
	if res.Count != 0 || res.Weight != 0 {
		t.Fatalf("empty reduce: %+v", res)
	}
	res = Reduce(plan.RobustPolicy{Kind: plan.RobustMedian}, 2,
		[]Update{{Device: "nan", Weight: 1, Delta: tensor.Vector{math.NaN(), 0}}})
	if res.Count != 0 || len(res.Rejected) != 1 {
		t.Fatalf("all-rejected reduce: %+v", res)
	}
}

// Reduce results must not alias input vectors (inputs are pooled).
func TestReduceResultDoesNotAliasInputs(t *testing.T) {
	updates := mkUpdates(5, 4, 3)
	res := Reduce(plan.RobustPolicy{Kind: plan.RobustCosineOutlier, MaxCosineDistance: 2}, 4, updates)
	before := res.Sum.Clone()
	for i := range updates {
		updates[i].Delta.Zero()
	}
	for j := range before {
		if res.Sum[j] != before[j] {
			t.Fatal("Result.Sum aliases an input update vector")
		}
	}
}
