package fedavg

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/tensor"
)

// SealedStripe is the merge-ready form of a round's drained
// PartialAccumulator stripes: the raw delta sum, the summed weight, the
// update and eval counts, and the per-metric device samples. A selector
// shard seals its stripes into one of these at round finalize and ships it
// upstream (protocol.StripeSeal carries the marshaled form); the
// coordinator folds sealed stripes from every shard into the global
// Accumulator. Sealing commutes with merging: folding devices into stripes
// per shard and then merging sealed stripes yields the same sums (up to
// float association) as folding every device into one accumulator.
type SealedStripe struct {
	// Sum is the raw delta sum; nil when Count is zero.
	Sum    tensor.Vector
	Weight float64
	// Count is the number of device updates folded in; EvalCount the number
	// of metrics-only (evaluation) reports.
	Count     int
	EvalCount int
	// Metrics are the device-reported metric samples, keyed by name.
	Metrics map[string][]float64
}

// SealStripes drains every stripe and merges them into one SealedStripe
// (the shard-local reduction step of the aggregation tree). The stripes
// must share the accumulator dimension; they are closed and must not be
// used again.
func SealStripes(stripes []*PartialAccumulator) (SealedStripe, error) {
	var out SealedStripe
	for _, st := range stripes {
		sum, weight, count, evalCount, metrics := st.Drain()
		out.EvalCount += evalCount
		for name, vs := range metrics {
			if out.Metrics == nil {
				out.Metrics = make(map[string][]float64)
			}
			out.Metrics[name] = append(out.Metrics[name], vs...)
		}
		if count == 0 {
			continue
		}
		if out.Sum == nil {
			out.Sum = sum
		} else {
			if len(sum) != len(out.Sum) {
				return out, fmt.Errorf("fedavg: seal stripe dim %d vs %d", len(sum), len(out.Sum))
			}
			out.Sum.Axpy(1, sum)
		}
		out.Weight += weight
		out.Count += count
	}
	return out, nil
}

// AddSealed folds a sealed stripe's update sum into the accumulator. A
// stripe with no updates (eval-only or empty) is a no-op here — its eval
// count and metrics are merged by the caller, which owns the round's metric
// tally.
func (a *Accumulator) AddSealed(s SealedStripe) error {
	if s.Count == 0 {
		return nil
	}
	return a.AddRaw(s.Sum, s.Weight, s.Count)
}

// Sealed-sum wire form: u32 element count followed by count big-endian
// float64 bits. The length is fully determined by the count, so a decoder
// can validate the buffer before allocating.
const sumHeader = 4

// MarshalSum encodes a raw delta sum for the wire.
func MarshalSum(v tensor.Vector) []byte {
	buf := make([]byte, sumHeader+8*len(v))
	binary.BigEndian.PutUint32(buf, uint32(len(v)))
	for i, x := range v {
		binary.BigEndian.PutUint64(buf[sumHeader+8*i:], math.Float64bits(x))
	}
	return buf
}

// UnmarshalSum decodes a MarshalSum buffer. The element count is validated
// against the buffer length before any allocation, so a hostile count
// cannot commit memory beyond the bytes actually received.
func UnmarshalSum(b []byte) (tensor.Vector, error) {
	if len(b) < sumHeader {
		return nil, fmt.Errorf("fedavg: sealed sum truncated (%d bytes)", len(b))
	}
	n := int(binary.BigEndian.Uint32(b))
	if len(b) != sumHeader+8*n {
		return nil, fmt.Errorf("fedavg: sealed sum claims %d elements in %d bytes", n, len(b))
	}
	v := make(tensor.Vector, n)
	for i := range v {
		v[i] = math.Float64frombits(binary.BigEndian.Uint64(b[sumHeader+8*i:]))
	}
	return v, nil
}
