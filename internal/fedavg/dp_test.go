package fedavg

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestDPConfigValidate(t *testing.T) {
	if err := (DPConfig{ClipNorm: 0, NoiseMultiplier: 1}).Validate(); err == nil {
		t.Fatal("zero clip must fail")
	}
	if err := (DPConfig{ClipNorm: 1, NoiseMultiplier: -1}).Validate(); err == nil {
		t.Fatal("negative noise must fail")
	}
	if err := (DPConfig{ClipNorm: 1}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestClipUpdateBoundsNorm(t *testing.T) {
	// Per-example average has norm 5 (weight 2, delta norm 10); clip to 1.
	u := &Update{Delta: tensor.Vector{6, 8}, Weight: 2}
	if !ClipUpdate(u, 1) {
		t.Fatal("should have clipped")
	}
	if got := u.Delta.Norm2() / u.Weight; math.Abs(got-1) > 1e-12 {
		t.Fatalf("clipped average norm = %v, want 1", got)
	}
	// Direction preserved.
	if u.Delta[0] <= 0 || u.Delta[1] <= 0 || math.Abs(u.Delta[1]/u.Delta[0]-8.0/6.0) > 1e-9 {
		t.Fatalf("clipping changed direction: %v", u.Delta)
	}
}

func TestClipUpdateNoopWhenSmall(t *testing.T) {
	u := &Update{Delta: tensor.Vector{0.1, 0}, Weight: 1}
	if ClipUpdate(u, 1) {
		t.Fatal("small update must not be clipped")
	}
	if u.Delta[0] != 0.1 {
		t.Fatal("no-op clip changed the update")
	}
	bad := &Update{Delta: tensor.Vector{1}, Weight: 0}
	if ClipUpdate(bad, 1) {
		t.Fatal("zero-weight update cannot be clipped")
	}
}

func TestAddNoiseStatistics(t *testing.T) {
	cfg := DPConfig{ClipNorm: 2, NoiseMultiplier: 3}
	k := 4
	rng := tensor.NewRNG(7)
	n := 20000
	avg := make(tensor.Vector, n) // zeros: the output IS the noise
	if err := AddNoise(avg, cfg, k, rng); err != nil {
		t.Fatal(err)
	}
	var sum, sumSq float64
	for _, v := range avg {
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	sd := math.Sqrt(sumSq/float64(n) - mean*mean)
	wantSigma := cfg.NoiseMultiplier * cfg.ClipNorm / float64(k) // 1.5
	if math.Abs(mean) > 0.05 {
		t.Fatalf("noise mean = %v, want ≈ 0", mean)
	}
	if math.Abs(sd-wantSigma) > 0.05 {
		t.Fatalf("noise sd = %v, want ≈ %v", sd, wantSigma)
	}
}

func TestAddNoiseErrors(t *testing.T) {
	rng := tensor.NewRNG(1)
	if err := AddNoise(tensor.Vector{0}, DPConfig{ClipNorm: 1}, 0, rng); err == nil {
		t.Fatal("k=0 must fail")
	}
	if err := AddNoise(tensor.Vector{0}, DPConfig{}, 1, rng); err == nil {
		t.Fatal("invalid config must fail")
	}
	// Zero multiplier: exact no-op.
	v := tensor.Vector{1, 2}
	if err := AddNoise(v, DPConfig{ClipNorm: 1, NoiseMultiplier: 0}, 1, rng); err != nil {
		t.Fatal(err)
	}
	if v[0] != 1 || v[1] != 2 {
		t.Fatal("zero noise changed the vector")
	}
}

func TestDPTrainingStillConverges(t *testing.T) {
	// Moderate clipping + noise should still learn the easy task — privacy
	// degrades, it must not destroy, utility.
	fed := fedBlobs(t, 20, 0.3)
	tr, err := NewTrainer(logisticSpec(), ClientConfig{BatchSize: 10, Epochs: 1, LR: 0.05, Shuffle: true}, 11)
	if err != nil {
		t.Fatal(err)
	}
	tr.DP = &DPConfig{ClipNorm: 0.5, NoiseMultiplier: 0.1}
	for round := 0; round < 30; round++ {
		if _, err := tr.Round(fed.Users); err != nil {
			t.Fatal(err)
		}
	}
	if acc := tr.Evaluate(fed.Test).Accuracy; acc < 0.85 {
		t.Fatalf("DP accuracy = %v", acc)
	}
}

func TestDPNoiseHurtsAtHighMultiplier(t *testing.T) {
	// Sanity check that the knob does something: extreme noise should be
	// visibly worse than no noise.
	fed := fedBlobs(t, 20, 0.3)
	clean, _ := NewTrainer(logisticSpec(), ClientConfig{BatchSize: 10, Epochs: 1, LR: 0.05}, 4)
	noisy, _ := NewTrainer(logisticSpec(), ClientConfig{BatchSize: 10, Epochs: 1, LR: 0.05}, 4)
	noisy.DP = &DPConfig{ClipNorm: 0.5, NoiseMultiplier: 50}
	for round := 0; round < 15; round++ {
		_, _ = clean.Round(fed.Users)
		_, _ = noisy.Round(fed.Users)
	}
	ca := clean.Evaluate(fed.Test).Accuracy
	na := noisy.Evaluate(fed.Test).Accuracy
	if na >= ca {
		t.Fatalf("extreme noise should hurt: noisy %v vs clean %v", na, ca)
	}
}

func TestQuantizedUpdatesConvergeLikeFull(t *testing.T) {
	// Sec. 11 Bandwidth: 8-bit quantized updates (as used on the wire)
	// should barely affect convergence. Simulate the wire round-trip by
	// quantizing each device delta through the checkpoint codec range
	// logic: scale to 8-bit resolution of its own range.
	fed := fedBlobs(t, 15, 0.3)
	quantize := func(u *Update) {
		lo, hi := u.Delta[0], u.Delta[0]
		for _, v := range u.Delta {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi == lo {
			return
		}
		step := (hi - lo) / 255
		for i, v := range u.Delta {
			q := math.Round((v - lo) / step)
			u.Delta[i] = lo + q*step
		}
	}

	run := func(doQuant bool) float64 {
		spec := logisticSpec()
		m, _ := spec.Build()
		global := make(tensor.Vector, m.NumParams())
		m.ReadParams(global)
		rng := tensor.NewRNG(9)
		for round := 0; round < 20; round++ {
			acc := NewAccumulator(len(global))
			for i, exs := range fed.Users {
				u, err := ClientUpdate(m, global, exs, ClientConfig{BatchSize: 10, Epochs: 1, LR: 0.05, Shuffle: true}, rng.Derive(uint64(round*100+i)))
				if err != nil {
					t.Fatal(err)
				}
				if doQuant {
					quantize(u)
				}
				_ = acc.Add(u)
			}
			avg, _ := acc.Average()
			_ = Apply(global, avg)
		}
		m.WriteParams(global)
		return m.Evaluate(fed.Test).Accuracy
	}
	full := run(false)
	quant := run(true)
	if quant < full-0.03 {
		t.Fatalf("quantized convergence %v much worse than full %v", quant, full)
	}
}
