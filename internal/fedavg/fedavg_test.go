package fedavg

import (
	"math"
	"testing"

	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func logisticSpec() nn.Spec {
	return nn.Spec{Kind: nn.KindLogistic, Features: 4, Classes: 3, Seed: 1}
}

func fedBlobs(t *testing.T, users int, skew float64) *data.Federated {
	t.Helper()
	f, err := data.Blobs(data.BlobsConfig{
		Users: users, ExamplesPer: 30, Features: 4, Classes: 3,
		TestSize: 300, Skew: skew, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestClientUpdateWeightedDelta(t *testing.T) {
	spec := logisticSpec()
	m, _ := spec.Build()
	global := make(tensor.Vector, m.NumParams())
	m.ReadParams(global)
	f := fedBlobs(t, 3, 0)

	u, err := ClientUpdate(m, global, f.Users[0], ClientConfig{BatchSize: 10, Epochs: 2, LR: 0.05}, tensor.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if u.Weight != float64(len(f.Users[0])) {
		t.Fatalf("weight = %v, want %d", u.Weight, len(f.Users[0]))
	}
	// Δ = n·(w − w_init): recomputing w from Δ must match the model params.
	local := make(tensor.Vector, len(global))
	m.ReadParams(local)
	for i := range global {
		want := global[i] + u.Delta[i]/u.Weight
		if math.Abs(local[i]-want) > 1e-9 {
			t.Fatalf("delta inconsistent at %d: %v vs %v", i, local[i], want)
		}
	}
	if u.Delta.Norm2() == 0 {
		t.Fatal("training should move parameters")
	}
}

func TestClientUpdateErrors(t *testing.T) {
	spec := logisticSpec()
	m, _ := spec.Build()
	global := make(tensor.Vector, m.NumParams())
	exs := []nn.Example{{X: []float64{1, 2, 3, 4}, Y: 0}}

	if _, err := ClientUpdate(m, global[:3], exs, ClientConfig{BatchSize: 1, Epochs: 1, LR: 0.1}, nil); err == nil {
		t.Fatal("dim mismatch must fail")
	}
	if _, err := ClientUpdate(m, global, nil, ClientConfig{BatchSize: 1, Epochs: 1, LR: 0.1}, nil); err == nil {
		t.Fatal("no examples must fail")
	}
	if _, err := ClientUpdate(m, global, exs, ClientConfig{BatchSize: 0, Epochs: 1, LR: 0.1}, nil); err == nil {
		t.Fatal("invalid config must fail")
	}
}

func TestAccumulatorMatchesManualAverage(t *testing.T) {
	acc := NewAccumulator(2)
	_ = acc.Add(&Update{Delta: tensor.Vector{2, 4}, Weight: 2})  // w=2, delta/w = {1,2}
	_ = acc.Add(&Update{Delta: tensor.Vector{12, 3}, Weight: 3}) // w=3, delta/w = {4,1}
	avg, err := acc.Average()
	if err != nil {
		t.Fatal(err)
	}
	// (2+12)/5, (4+3)/5
	if math.Abs(avg[0]-2.8) > 1e-12 || math.Abs(avg[1]-1.4) > 1e-12 {
		t.Fatalf("avg = %v", avg)
	}
	if acc.Count() != 2 || acc.Weight() != 5 {
		t.Fatalf("count=%d weight=%v", acc.Count(), acc.Weight())
	}
}

func TestAccumulatorErrors(t *testing.T) {
	acc := NewAccumulator(2)
	if _, err := acc.Average(); err == nil {
		t.Fatal("empty accumulator Average must fail")
	}
	if err := acc.Add(&Update{Delta: tensor.Vector{1}, Weight: 1}); err == nil {
		t.Fatal("dim mismatch must fail")
	}
	if err := acc.Add(&Update{Delta: tensor.Vector{1, 2}, Weight: 0}); err == nil {
		t.Fatal("zero weight must fail")
	}
	if err := acc.AddRaw(tensor.Vector{1, 2}, 0, 1); err == nil {
		t.Fatal("AddRaw zero weight must fail")
	}
	if err := acc.AddRaw(tensor.Vector{1}, 1, 1); err == nil {
		t.Fatal("AddRaw dim mismatch must fail")
	}
}

func TestMergeEqualsFlatAccumulation(t *testing.T) {
	// Two-level aggregation (Aggregators → Master Aggregator) must produce
	// exactly the same result as flat accumulation.
	updates := []*Update{
		{Delta: tensor.Vector{1, 2}, Weight: 1},
		{Delta: tensor.Vector{3, 4}, Weight: 2},
		{Delta: tensor.Vector{5, 6}, Weight: 3},
		{Delta: tensor.Vector{7, 8}, Weight: 4},
	}
	flat := NewAccumulator(2)
	for _, u := range updates {
		_ = flat.Add(u)
	}
	g1, g2 := NewAccumulator(2), NewAccumulator(2)
	_ = g1.Add(updates[0])
	_ = g1.Add(updates[1])
	_ = g2.Add(updates[2])
	_ = g2.Add(updates[3])
	master := NewAccumulator(2)
	if err := master.Merge(g1); err != nil {
		t.Fatal(err)
	}
	if err := master.Merge(g2); err != nil {
		t.Fatal(err)
	}
	fa, _ := flat.Average()
	ma, _ := master.Average()
	for i := range fa {
		if math.Abs(fa[i]-ma[i]) > 1e-12 {
			t.Fatalf("hierarchical average %v != flat %v", ma, fa)
		}
	}
	if master.Count() != 4 {
		t.Fatalf("master count = %d", master.Count())
	}
}

func TestApplyDimError(t *testing.T) {
	if err := Apply(tensor.Vector{1}, tensor.Vector{1, 2}); err == nil {
		t.Fatal("dim mismatch must fail")
	}
}

func TestTrainerConvergesOnBlobs(t *testing.T) {
	f := fedBlobs(t, 20, 0.5)
	tr, err := NewTrainer(logisticSpec(), ClientConfig{BatchSize: 10, Epochs: 2, LR: 0.05, Shuffle: true}, 11)
	if err != nil {
		t.Fatal(err)
	}
	before := tr.Evaluate(f.Test).Accuracy
	for round := 0; round < 25; round++ {
		if _, err := tr.Round(f.Users); err != nil {
			t.Fatal(err)
		}
	}
	after := tr.Evaluate(f.Test).Accuracy
	if after < 0.9 {
		t.Fatalf("FedAvg accuracy %v -> %v, want ≥0.9", before, after)
	}
	if after <= before {
		t.Fatalf("no improvement: %v -> %v", before, after)
	}
}

func TestTrainerRoundMetadata(t *testing.T) {
	f := fedBlobs(t, 5, 0)
	tr, _ := NewTrainer(logisticSpec(), ClientConfig{BatchSize: 10, Epochs: 1, LR: 0.05}, 1)
	res, err := tr.Round(f.Users)
	if err != nil {
		t.Fatal(err)
	}
	if res.Round != 1 || res.Devices != 5 || res.Examples != float64(f.TotalExamples()) {
		t.Fatalf("round result: %+v", res)
	}
	res2, _ := tr.Round(f.Users)
	if res2.Round != 2 {
		t.Fatalf("round counter = %d", res2.Round)
	}
}

func TestTrainerEmptyRound(t *testing.T) {
	tr, _ := NewTrainer(logisticSpec(), ClientConfig{BatchSize: 1, Epochs: 1, LR: 0.1}, 1)
	if _, err := tr.Round(nil); err == nil {
		t.Fatal("round with no devices must fail")
	}
}

func TestFedSGDMatchesSingleStep(t *testing.T) {
	spec := logisticSpec()
	m, _ := spec.Build()
	global := make(tensor.Vector, m.NumParams())
	m.ReadParams(global)
	f := fedBlobs(t, 1, 0)
	u, err := FedSGDUpdate(m, global, f.Users[0], 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if u.Weight != float64(len(f.Users[0])) || u.Delta.Norm2() == 0 {
		t.Fatalf("FedSGD update: weight=%v norm=%v", u.Weight, u.Delta.Norm2())
	}
}

func TestFedAvgMatchesCentralizedOnIID(t *testing.T) {
	// On IID data FedAvg should reach accuracy comparable to centralized
	// SGD on the pooled data — the "matches the performance of a
	// server-trained model" claim, in miniature.
	f := fedBlobs(t, 20, 0)
	var pooled []nn.Example
	for _, u := range f.Users {
		pooled = append(pooled, u...)
	}
	central, err := TrainCentralized(logisticSpec(), pooled, 10, 20, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	centralAcc := central.Evaluate(f.Test).Accuracy

	tr, _ := NewTrainer(logisticSpec(), ClientConfig{BatchSize: 10, Epochs: 2, LR: 0.05, Shuffle: true}, 4)
	for round := 0; round < 30; round++ {
		_, _ = tr.Round(f.Users)
	}
	fedAcc := tr.Evaluate(f.Test).Accuracy
	if fedAcc < centralAcc-0.05 {
		t.Fatalf("FedAvg %v not comparable to centralized %v", fedAcc, centralAcc)
	}
}

func TestTrainCentralizedBadConfig(t *testing.T) {
	if _, err := TrainCentralized(logisticSpec(), nil, 0, 1, 0.1, 1); err == nil {
		t.Fatal("zero epochs must fail")
	}
}

func TestMoreClientsDiminishingReturns(t *testing.T) {
	// Sanity version of the Sec. 9 observation: going from 2 to 10 clients
	// per round helps much more than 10 to 20 on non-IID data.
	f := fedBlobs(t, 40, 0.8)
	accAt := func(k int) float64 {
		tr, _ := NewTrainer(logisticSpec(), ClientConfig{BatchSize: 10, Epochs: 1, LR: 0.05}, 5)
		rng := tensor.NewRNG(99)
		for round := 0; round < 15; round++ {
			perm := rng.Perm(len(f.Users))
			sel := make([][]nn.Example, k)
			for i := 0; i < k; i++ {
				sel[i] = f.Users[perm[i]]
			}
			_, _ = tr.Round(sel)
		}
		return tr.Evaluate(f.Test).Accuracy
	}
	a2, a10 := accAt(2), accAt(10)
	if a10 < a2-0.02 {
		t.Fatalf("more clients should not hurt materially: k=2 %v vs k=10 %v", a2, a10)
	}
}

func TestServerMomentumAccelerates(t *testing.T) {
	// FedAvgM check: on a consistent gradient direction, the momentum
	// server step travels further than plain FedAvg in the same number of
	// rounds (same data, same client config, same seeds).
	fed := fedBlobs(t, 10, 0)
	plain, _ := NewTrainer(spec2(), ClientConfig{BatchSize: 10, Epochs: 1, LR: 0.01}, 3)
	mom, _ := NewTrainer(spec2(), ClientConfig{BatchSize: 10, Epochs: 1, LR: 0.01}, 3)
	mom.ServerMomentum = 0.9
	start := plain.Global.Clone()
	for i := 0; i < 5; i++ {
		if _, err := plain.Round(fed.Users); err != nil {
			t.Fatal(err)
		}
		if _, err := mom.Round(fed.Users); err != nil {
			t.Fatal(err)
		}
	}
	distPlain := tensor.Sub(nil, plain.Global, start).Norm2()
	distMom := tensor.Sub(nil, mom.Global, start).Norm2()
	if distMom <= distPlain {
		t.Fatalf("momentum should travel further on a consistent gradient: %v vs %v", distMom, distPlain)
	}
}

func spec2() nn.Spec {
	return nn.Spec{Kind: nn.KindLogistic, Features: 4, Classes: 3, Seed: 1}
}

func TestServerMomentumStillConverges(t *testing.T) {
	fed := fedBlobs(t, 20, 0.5)
	tr, _ := NewTrainer(spec2(), ClientConfig{BatchSize: 10, Epochs: 1, LR: 0.05, Shuffle: true}, 11)
	tr.ServerMomentum = 0.7
	for round := 0; round < 25; round++ {
		if _, err := tr.Round(fed.Users); err != nil {
			t.Fatal(err)
		}
	}
	if acc := tr.Evaluate(fed.Test).Accuracy; acc < 0.9 {
		t.Fatalf("FedAvgM accuracy = %v", acc)
	}
}
