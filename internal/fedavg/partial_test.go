package fedavg

import (
	"errors"
	"math"
	"sync"
	"testing"

	"repro/internal/tensor"
)

// TestPartialConcurrentFoldsMatchSerial: many goroutines folding into a
// striped set of partials must merge to exactly what a serial Accumulator
// computes (the folds here are exact float adds of integer-valued deltas,
// so even summation order cannot perturb the result). Run under -race in
// CI: the stripe lock is what makes the concurrent folds safe.
func TestPartialConcurrentFoldsMatchSerial(t *testing.T) {
	const dim, devices, stripes = 64, 200, 4
	parts := make([]*PartialAccumulator, stripes)
	for i := range parts {
		parts[i] = NewPartial(dim)
	}
	delta := func(i int) tensor.Vector {
		d := make(tensor.Vector, dim)
		for j := range d {
			d[j] = float64((i % 5) + j%3)
		}
		return d
	}
	var wg sync.WaitGroup
	for i := 0; i < devices; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d := delta(i)
			err := parts[i%stripes].Accumulate(float64(1+i%3), map[string]float64{"loss": float64(i)},
				func(sum tensor.Vector) error {
					sum.Axpy(1, d)
					return nil
				})
			if err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()

	merged := NewAccumulator(dim)
	metricCount := 0
	for _, p := range parts {
		sum, weight, count, evalCount, metrics := p.Drain()
		if count > 0 {
			if err := merged.AddRaw(sum, weight, count); err != nil {
				t.Fatal(err)
			}
		}
		if evalCount != 0 {
			t.Fatalf("unexpected eval count %d", evalCount)
		}
		metricCount += len(metrics["loss"])
	}

	ref := NewAccumulator(dim)
	for i := 0; i < devices; i++ {
		if err := ref.Add(&Update{Delta: delta(i), Weight: float64(1 + i%3)}); err != nil {
			t.Fatal(err)
		}
	}
	if merged.Count() != ref.Count() || merged.Weight() != ref.Weight() {
		t.Fatalf("count/weight: %d/%v vs %d/%v", merged.Count(), merged.Weight(), ref.Count(), ref.Weight())
	}
	got, _ := merged.Average()
	want, _ := ref.Average()
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("avg[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if metricCount != devices {
		t.Fatalf("metrics folded %d, want %d", metricCount, devices)
	}
}

// TestPartialClosedRefusesFolds: once closed (or drained), folds and eval
// adds must return ErrPartialClosed and leave nothing behind — the window
// race a reader can lose against finalization.
func TestPartialClosedRefusesFolds(t *testing.T) {
	p := NewPartial(2)
	if err := p.Accumulate(1, nil, func(sum tensor.Vector) error { sum[0] += 5; return nil }); err != nil {
		t.Fatal(err)
	}
	p.Close()
	err := p.Accumulate(1, nil, func(sum tensor.Vector) error { sum[0] += 100; return nil })
	if !errors.Is(err, ErrPartialClosed) {
		t.Fatalf("fold after close: %v", err)
	}
	if !errors.Is(p.AddEval(map[string]float64{"a": 1}), ErrPartialClosed) {
		t.Fatal("eval add after close must be refused")
	}
	sum, weight, count, evalCount, _ := p.Drain()
	if sum[0] != 5 || weight != 1 || count != 1 || evalCount != 0 {
		t.Fatalf("late fold leaked in: sum=%v weight=%v count=%d eval=%d", sum, weight, count, evalCount)
	}
}

// TestPartialRejectsBadFolds: non-positive weights are refused before the
// fold runs, and a failing fold must not advance weight or count.
func TestPartialRejectsBadFolds(t *testing.T) {
	p := NewPartial(2)
	if err := p.Accumulate(0, nil, func(tensor.Vector) error { t.Fatal("fold ran"); return nil }); err == nil {
		t.Fatal("zero weight accepted")
	}
	if err := p.Accumulate(1, nil, func(tensor.Vector) error { return errors.New("boom") }); err == nil {
		t.Fatal("failing fold accepted")
	}
	_, weight, count, _, _ := p.Drain()
	if weight != 0 || count != 0 {
		t.Fatalf("failed folds counted: weight=%v count=%d", weight, count)
	}
}

// TestPartialEvalOnly: metrics-only folds count separately and merge clean.
func TestPartialEvalOnly(t *testing.T) {
	p := NewPartial(3)
	for i := 0; i < 4; i++ {
		if err := p.AddEval(map[string]float64{"acc": float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	_, weight, count, evalCount, metrics := p.Drain()
	if weight != 0 || count != 0 || evalCount != 4 || len(metrics["acc"]) != 4 {
		t.Fatalf("eval drain: weight=%v count=%d eval=%d metrics=%v", weight, count, evalCount, metrics)
	}
}
