// Package fedavg implements the Federated Averaging algorithm of Appendix B
// (McMahan et al. 2017) plus the FedSGD and centralized-SGD baselines used
// in the paper's comparisons. The package is pure algorithm: the server
// actors call into it, and the simulation harness can run it directly.
package fedavg

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Update is one device's contribution: the weighted delta Δ = n·(w − w_init)
// and the weight n (the local example count). The weighted form is what the
// algorithm sums and what Secure Aggregation carries ("Note Δ is more
// amenable to compression than w").
type Update struct {
	Delta  tensor.Vector
	Weight float64
	// TrainLoss is the mean training loss observed, reported as a metric.
	TrainLoss float64
}

// ClientConfig is the device portion of the algorithm's hyperparameters.
type ClientConfig struct {
	BatchSize int
	Epochs    int
	LR        float64
	// Shuffle controls whether local data is reshuffled each epoch.
	Shuffle bool
}

// ClientUpdate implements ClientUpdate(w) of Algorithm 1: load the global
// weights, run E epochs of minibatch SGD over the local data, and return the
// weighted update (Δ, n). The model's parameters are clobbered.
func ClientUpdate(model nn.Model, global tensor.Vector, examples []nn.Example, cfg ClientConfig, rng *tensor.RNG) (*Update, error) {
	if len(global) != model.NumParams() {
		return nil, fmt.Errorf("fedavg: global has %d params, model wants %d", len(global), model.NumParams())
	}
	if len(examples) == 0 {
		return nil, fmt.Errorf("fedavg: device has no examples")
	}
	if cfg.BatchSize <= 0 || cfg.Epochs <= 0 || cfg.LR <= 0 {
		return nil, fmt.Errorf("fedavg: invalid client config %+v", cfg)
	}
	model.WriteParams(global)

	idx := make([]int, len(examples))
	for i := range idx {
		idx[i] = i
	}
	batch := make([]nn.Example, 0, cfg.BatchSize)
	var lossSum float64
	var lossBatches int
	for e := 0; e < cfg.Epochs; e++ {
		if cfg.Shuffle && rng != nil {
			idx = rng.Perm(len(examples))
		}
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			batch = batch[:0]
			for _, i := range idx[start:end] {
				batch = append(batch, examples[i])
			}
			lossSum += model.TrainBatch(batch, cfg.LR)
			lossBatches++
		}
	}

	local := make(tensor.Vector, len(global))
	model.ReadParams(local)
	n := float64(len(examples))
	delta := tensor.Sub(nil, local, global)
	delta.Scale(n) // Δ = n·(w − w_init)

	u := &Update{Delta: delta, Weight: n}
	if lossBatches > 0 {
		u.TrainLoss = lossSum / float64(lossBatches)
	}
	return u, nil
}

// FedSGDUpdate is the FedSGD baseline: a single gradient step over the full
// local dataset (one epoch, one batch), the large-batch SGD special case the
// protocol equally supports (Sec. 1).
func FedSGDUpdate(model nn.Model, global tensor.Vector, examples []nn.Example, lr float64) (*Update, error) {
	return ClientUpdate(model, global, examples, ClientConfig{
		BatchSize: len(examples), Epochs: 1, LR: lr,
	}, nil)
}

// Accumulator is the server side of Algorithm 1: the running sums
// w̄ = Σ Δᵏ and n̄ = Σ nᵏ. Updates are folded in online, as they arrive —
// the paper's rebuttal of "you must store updates" (Sec. 10) — so memory is
// O(model), not O(devices).
type Accumulator struct {
	sum    tensor.Vector
	weight float64
	count  int
}

// NewAccumulator returns an accumulator for dim-dimensional updates.
func NewAccumulator(dim int) *Accumulator {
	return &Accumulator{sum: make(tensor.Vector, dim)}
}

// Add folds one update in.
func (a *Accumulator) Add(u *Update) error {
	if len(u.Delta) != len(a.sum) {
		return fmt.Errorf("fedavg: update dim %d, accumulator dim %d", len(u.Delta), len(a.sum))
	}
	if u.Weight <= 0 {
		return fmt.Errorf("fedavg: non-positive update weight %v", u.Weight)
	}
	a.sum.Axpy(1, u.Delta)
	a.weight += u.Weight
	a.count++
	return nil
}

// AddRaw folds in an already-summed (delta, weight, count) triple — the
// path used when a Secure Aggregation group delivers a pre-summed result.
func (a *Accumulator) AddRaw(deltaSum tensor.Vector, weight float64, count int) error {
	if len(deltaSum) != len(a.sum) {
		return fmt.Errorf("fedavg: raw dim %d, accumulator dim %d", len(deltaSum), len(a.sum))
	}
	if weight <= 0 || count <= 0 {
		return fmt.Errorf("fedavg: non-positive raw weight %v / count %d", weight, count)
	}
	a.sum.Axpy(1, deltaSum)
	a.weight += weight
	a.count += count
	return nil
}

// Merge folds another accumulator in (Master Aggregator combining the
// intermediate sums of its Aggregators, Sec. 6).
func (a *Accumulator) Merge(b *Accumulator) error {
	if len(b.sum) != len(a.sum) {
		return fmt.Errorf("fedavg: merge dim %d vs %d", len(b.sum), len(a.sum))
	}
	a.sum.Axpy(1, b.sum)
	a.weight += b.weight
	a.count += b.count
	return nil
}

// Count returns the number of device updates folded in.
func (a *Accumulator) Count() int { return a.count }

// Weight returns n̄, the summed weights.
func (a *Accumulator) Weight() float64 { return a.weight }

// Average returns Δ = w̄/n̄, or an error when nothing was accumulated.
func (a *Accumulator) Average() (tensor.Vector, error) {
	if a.weight <= 0 {
		return nil, fmt.Errorf("fedavg: empty accumulator")
	}
	avg := a.sum.Clone()
	avg.Scale(1 / a.weight)
	return avg, nil
}

// Apply performs the server step w_{t+1} = w_t + Δ in place.
func Apply(global, avgDelta tensor.Vector) error {
	if len(global) != len(avgDelta) {
		return fmt.Errorf("fedavg: apply dim %d vs %d", len(global), len(avgDelta))
	}
	global.Axpy(1, avgDelta)
	return nil
}
