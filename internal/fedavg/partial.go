package fedavg

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/tensor"
)

// ErrPartialClosed is returned by a PartialAccumulator once the round's
// reporting window has closed: the stripe has been (or is about to be)
// merged, so a late fold must be refused rather than silently lost.
var ErrPartialClosed = errors.New("fedavg: partial accumulator closed")

// PartialAccumulator is one stripe of a striped round accumulator: a
// mutex-guarded Accumulator (plus the per-device metrics and eval counts
// that ride along with updates) that many connection-reader goroutines fold
// into concurrently — decode-and-accumulate at the edge. A round keeps
// GOMAXPROCS stripes, each reader picks one round-robin, and at
// finalization the stripes are closed and merged down the aggregation tree.
// Because readers fold straight into the stripe, the per-device hot loop
// performs no O(dim) allocation and no O(dim) message hop.
//
// Note the floating-point caveat: which stripe a device lands on — and the
// order of folds within a stripe — depends on goroutine scheduling, so the
// merged sum can differ from a serial fold in the last few ulps across
// runs. Consumers compare committed checkpoints with a tolerance.
type PartialAccumulator struct {
	mu     sync.Mutex
	closed bool
	acc    *Accumulator
	// evalCount counts metrics-only folds (evaluation reports).
	evalCount int
	metrics   map[string][]float64
}

// NewPartial returns a stripe for dim-dimensional updates.
func NewPartial(dim int) *PartialAccumulator {
	return &PartialAccumulator{acc: NewAccumulator(dim)}
}

// Accumulate folds one device's weighted update in: fold is called with the
// stripe's raw sum vector under the stripe lock and must add the device's
// delta into it — typically checkpoint.Meta.AccumulateParams, which
// dequantizes wire bytes straight into the sum with no intermediate vector.
// fold must either apply fully or leave the sum untouched on error.
// Returns ErrPartialClosed once the stripe has been closed.
func (p *PartialAccumulator) Accumulate(weight float64, metrics map[string]float64, fold func(sum tensor.Vector) error) error {
	if weight <= 0 {
		return fmt.Errorf("fedavg: non-positive update weight %v", weight)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPartialClosed
	}
	if err := fold(p.acc.sum); err != nil {
		return err
	}
	p.acc.weight += weight
	p.acc.count++
	p.addMetricsLocked(metrics)
	return nil
}

// AddEval folds a metrics-only (evaluation) report in.
func (p *PartialAccumulator) AddEval(metrics map[string]float64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPartialClosed
	}
	p.evalCount++
	p.addMetricsLocked(metrics)
	return nil
}

func (p *PartialAccumulator) addMetricsLocked(metrics map[string]float64) {
	if len(metrics) == 0 {
		return
	}
	if p.metrics == nil {
		p.metrics = make(map[string][]float64)
	}
	for name, v := range metrics {
		p.metrics[name] = append(p.metrics[name], v)
	}
}

// Reports returns how many reports (updates plus metrics-only) have been
// folded in so far. Safe to call while folds are in flight.
func (p *PartialAccumulator) Reports() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.acc.count + p.evalCount
}

// Close seals the stripe: subsequent folds return ErrPartialClosed. Closing
// under the stripe lock gives Drain a happens-before edge over every fold
// that succeeded.
func (p *PartialAccumulator) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
}

// Drain closes the stripe (if not already closed) and returns its contents
// for merging: the raw delta sum, the summed weight, the update count, the
// metrics-only count, and the metric values. The stripe must not be used
// again; the returned slices are handed off, not copied.
func (p *PartialAccumulator) Drain() (sum tensor.Vector, weight float64, count, evalCount int, metrics map[string][]float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	return p.acc.sum, p.acc.weight, p.acc.count, p.evalCount, p.metrics
}
