package fedavg

import (
	"fmt"

	"repro/internal/tensor"
)

// DPConfig enables differentially private aggregation in the style of
// McMahan et al. 2018 ("Learning Differentially Private Recurrent Language
// Models"), which the paper's Sec. 6 footnote reports as implemented on the
// platform: each device's *average* update is clipped to an L2 bound, and
// Gaussian noise calibrated to that bound is added to the round average.
//
// This package implements the mechanism; a full (ε, δ) accounting (moments
// accountant) is out of scope — see DESIGN.md §7.
type DPConfig struct {
	// ClipNorm S bounds each device's per-example-average update:
	// Δ/n is scaled to at most S in L2.
	ClipNorm float64
	// NoiseMultiplier z: Gaussian noise with σ = z·S/K is added to each
	// coordinate of the round average, K being the number of updates.
	NoiseMultiplier float64
}

// Validate reports whether the config is usable.
func (c DPConfig) Validate() error {
	if c.ClipNorm <= 0 {
		return fmt.Errorf("fedavg: DP ClipNorm must be positive, got %v", c.ClipNorm)
	}
	if c.NoiseMultiplier < 0 {
		return fmt.Errorf("fedavg: DP NoiseMultiplier must be non-negative, got %v", c.NoiseMultiplier)
	}
	return nil
}

// ClipUpdate scales the update in place so its per-example average has L2
// norm at most S. It returns true when clipping was applied.
func ClipUpdate(u *Update, clipNorm float64) bool {
	if u.Weight <= 0 {
		return false
	}
	// The weighted delta is n·(w − w_init); the clipped quantity is the
	// unweighted average (w − w_init).
	norm := u.Delta.Norm2() / u.Weight
	if norm <= clipNorm {
		return false
	}
	u.Delta.Scale(clipNorm / norm)
	return true
}

// AddNoise perturbs the averaged update in place with spherical Gaussian
// noise σ = z·S/k per coordinate.
func AddNoise(avg tensor.Vector, cfg DPConfig, k int, rng *tensor.RNG) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if k <= 0 {
		return fmt.Errorf("fedavg: DP noise needs positive update count, got %d", k)
	}
	if cfg.NoiseMultiplier == 0 {
		return nil
	}
	sigma := cfg.NoiseMultiplier * cfg.ClipNorm / float64(k)
	for i := range avg {
		avg[i] += sigma * rng.NormFloat64()
	}
	return nil
}
