package fedavg

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Trainer runs the full synchronous Federated Averaging loop in-process: the
// algorithmic core of a round without the protocol machinery. The simulation
// harness and the convergence experiments (next-word, K-sweep) use it; the
// server actors reimplement the same loop over real device connections.
type Trainer struct {
	Spec   nn.Spec
	Client ClientConfig
	// Global is the current global model parameter vector.
	Global tensor.Vector
	// ServerMomentum enables FedAvgM: the server applies the averaged
	// update through a momentum buffer, v ← β·v + Δ; w ← w + v. One of the
	// algorithm directions the paper's Sec. 11 calls for ("FL would greatly
	// benefit from new algorithms"); 0 disables it (plain FedAvg).
	ServerMomentum float64
	// DP, when non-nil, enables differentially private aggregation
	// (per-device clipping + Gaussian noise on the average; see dp.go).
	DP *DPConfig

	velocity tensor.Vector
	model    nn.Model // reused across client updates
	round    int
	rng      *tensor.RNG
}

// RoundResult reports one completed round.
type RoundResult struct {
	Round     int
	Devices   int
	Examples  float64 // n̄
	TrainLoss float64 // mean of device-reported mean losses
}

// NewTrainer initializes the global model from the spec.
func NewTrainer(spec nn.Spec, client ClientConfig, seed uint64) (*Trainer, error) {
	m, err := spec.Build()
	if err != nil {
		return nil, err
	}
	global := make(tensor.Vector, m.NumParams())
	m.ReadParams(global)
	return &Trainer{Spec: spec, Client: client, Global: global, model: m, rng: tensor.NewRNG(seed)}, nil
}

// Round runs one synchronous round over the given per-device datasets
// (each element is one participating device's local data) and applies the
// averaged update to the global model.
func (t *Trainer) Round(devices [][]nn.Example) (*RoundResult, error) {
	if len(devices) == 0 {
		return nil, fmt.Errorf("fedavg: round with no devices")
	}
	acc := NewAccumulator(len(t.Global))
	var lossSum float64
	for i, examples := range devices {
		u, err := ClientUpdate(t.model, t.Global, examples, t.Client, t.rng.Derive(uint64(t.round)<<20|uint64(i)))
		if err != nil {
			return nil, fmt.Errorf("fedavg: device %d: %w", i, err)
		}
		if t.DP != nil {
			ClipUpdate(u, t.DP.ClipNorm)
		}
		if err := acc.Add(u); err != nil {
			return nil, err
		}
		lossSum += u.TrainLoss
	}
	avg, err := acc.Average()
	if err != nil {
		return nil, err
	}
	if t.DP != nil {
		if err := AddNoise(avg, *t.DP, acc.Count(), t.rng.Derive(uint64(t.round)^0xD9)); err != nil {
			return nil, err
		}
	}
	if t.ServerMomentum > 0 {
		if t.velocity == nil {
			t.velocity = make(tensor.Vector, len(t.Global))
		}
		t.velocity.Scale(t.ServerMomentum)
		t.velocity.Axpy(1, avg)
		avg = t.velocity
	}
	if err := Apply(t.Global, avg); err != nil {
		return nil, err
	}
	t.round++
	return &RoundResult{
		Round:     t.round,
		Devices:   acc.Count(),
		Examples:  acc.Weight(),
		TrainLoss: lossSum / float64(len(devices)),
	}, nil
}

// Evaluate scores the current global model on examples.
func (t *Trainer) Evaluate(examples []nn.Example) nn.Metrics {
	t.model.WriteParams(t.Global)
	return t.model.Evaluate(examples)
}

// TrainCentralized is the datacenter baseline: plain minibatch SGD over the
// pooled dataset, used for the Sec. 8 "matches the performance of a
// server-trained" comparison. It returns the trained model.
func TrainCentralized(spec nn.Spec, examples []nn.Example, epochs, batchSize int, lr float64, seed uint64) (nn.Model, error) {
	if batchSize <= 0 || epochs <= 0 {
		return nil, fmt.Errorf("fedavg: invalid centralized config")
	}
	m, err := spec.Build()
	if err != nil {
		return nil, err
	}
	rng := tensor.NewRNG(seed)
	for e := 0; e < epochs; e++ {
		idx := rng.Perm(len(examples))
		batch := make([]nn.Example, 0, batchSize)
		for start := 0; start < len(idx); start += batchSize {
			end := start + batchSize
			if end > len(idx) {
				end = len(idx)
			}
			batch = batch[:0]
			for _, i := range idx[start:end] {
				batch = append(batch, examples[i])
			}
			m.TrainBatch(batch, lr)
		}
	}
	return m, nil
}
