package remote

import (
	"encoding/gob"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/actor"
	"repro/internal/protocol"
	"repro/internal/transport"
)

// testNote is the actor message the remote-ref tests ship across the wire.
type testNote struct {
	Text string
}

func init() { gob.Register(testNote{}) }

// fastOpts returns peer options tuned for test speed.
func fastOpts() Options {
	return Options{
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatMiss:     3,
		BackoffMin:        5 * time.Millisecond,
		BackoffMax:        50 * time.Millisecond,
		CallTimeout:       2 * time.Second,
	}
}

// testServer serves sessions on a mem-network endpoint until closed.
type testServer struct {
	net   *transport.MemNetwork
	addr  string
	l     transport.Listener
	opts  SessionOptions
	wg    sync.WaitGroup
	mu    sync.Mutex
	conns []*Session
}

func newTestServer(t *testing.T, net *transport.MemNetwork, addr string, opts SessionOptions) *testServer {
	t.Helper()
	l, err := net.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	s := &testServer{net: net, addr: addr, l: l, opts: opts}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			sess := NewSession(conn, opts)
			s.mu.Lock()
			s.conns = append(s.conns, sess)
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				_ = sess.Run()
			}()
		}
	}()
	return s
}

// dropConns kills every live session without closing the listener —
// simulating a network partition the client must notice and redial through.
func (s *testServer) dropConns() {
	s.mu.Lock()
	conns := append([]*Session(nil), s.conns...)
	s.conns = s.conns[:0]
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

func (s *testServer) close() {
	s.l.Close()
	s.dropConns()
	s.wg.Wait()
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestPeerHelloAndRemoteRef covers the location-transparency round trip: a
// peer connects, its Hello reaches the serving side, and a remote Ref
// delivers an actor message into the server's registry.
func TestPeerHelloAndRemoteRef(t *testing.T) {
	net := transport.NewMemNetwork()
	sys := actor.NewSystem()
	defer sys.Shutdown()

	got := make(chan testNote, 8)
	target := sys.Spawn("echo", actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {
		if n, ok := msg.(testNote); ok {
			got <- n
		}
	}))
	reg := NewRegistry()
	reg.Register("echo", target)

	var hello atomic.Value
	srv := newTestServer(t, net, "srv", SessionOptions{
		Registry: reg,
		Handle: func(msg interface{}) {
			if h, ok := msg.(protocol.ShardHello); ok {
				hello.Store(h)
			}
		},
	})
	defer srv.close()

	opts := fastOpts()
	opts.Hello = protocol.ShardHello{Shard: 3, Name: "shard-3"}
	peer := NewPeer("srv", func() (transport.Conn, error) { return net.Dial("srv") }, nil, opts)
	defer peer.Close()

	waitFor(t, "link up", peer.Alive)
	waitFor(t, "hello delivered", func() bool { return hello.Load() != nil })
	if h := hello.Load().(protocol.ShardHello); h.Shard != 3 || h.Name != "shard-3" {
		t.Fatalf("hello = %+v", h)
	}

	ref := peer.Ref("echo")
	if ref.Stopped() {
		t.Fatal("remote ref reads stopped while the link is up")
	}
	if err := ref.Send(testNote{Text: "over the wire"}); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-got:
		if n.Text != "over the wire" {
			t.Fatalf("note = %+v", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("envelope never delivered to the registered actor")
	}

	// Unregistered targets are dropped server-side, not an error for the
	// sender (liveness is the heartbeat, not per-message acks).
	if err := peer.Ref("nobody").Send(testNote{Text: "void"}); err != nil {
		t.Fatalf("send to unknown target errored on the wire: %v", err)
	}
}

// TestPeerReconnectWithBackoff drops the live connection server-side and
// asserts the peer notices, reports down, redials, and comes back up.
func TestPeerReconnectWithBackoff(t *testing.T) {
	net := transport.NewMemNetwork()
	srv := newTestServer(t, net, "srv", SessionOptions{})
	defer srv.close()

	var ups, downs atomic.Int64
	opts := fastOpts()
	opts.OnUp = func() { ups.Add(1) }
	opts.OnDown = func(error) { downs.Add(1) }
	peer := NewPeer("srv", func() (transport.Conn, error) { return net.Dial("srv") }, nil, opts)
	defer peer.Close()

	waitFor(t, "first connect", func() bool { return ups.Load() == 1 })
	srv.dropConns()
	waitFor(t, "down callback", func() bool { return downs.Load() >= 1 })
	waitFor(t, "reconnect", func() bool { return ups.Load() >= 2 && peer.Alive() })

	// A second drop is noticed and survived too; the link settles back up.
	// (Alive() itself can flicker faster than a poll can observe — the
	// monotonic down counter is the reliable signal.)
	prevDowns := downs.Load()
	srv.dropConns()
	waitFor(t, "second drop", func() bool { return downs.Load() > prevDowns })
	waitFor(t, "second reconnect", peer.Alive)
}

// TestPeerHeartbeatDeclaresDeadPeer connects to a server that swallows all
// traffic: the peer must declare the link dead on missed heartbeats alone.
func TestPeerHeartbeatDeclaresDeadPeer(t *testing.T) {
	net := transport.NewMemNetwork()
	l, err := net.Listen("blackhole")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			// Read and ignore everything; never answer a heartbeat.
			go func() {
				for {
					if _, err := conn.Recv(); err != nil {
						return
					}
				}
			}()
		}
	}()

	downErr := make(chan error, 4)
	opts := fastOpts()
	opts.OnDown = func(err error) { downErr <- err }
	peer := NewPeer("blackhole", func() (transport.Conn, error) { return net.Dial("blackhole") }, nil, opts)
	defer peer.Close()

	select {
	case err := <-downErr:
		if err == nil {
			t.Fatal("down callback with nil error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("silent peer was never declared dead")
	}
}

// TestLockServiceOverWire runs the Sec. 4.2 lock-service RPCs across two
// peer links: mutual exclusion between remote owners, owner queries, release,
// and — the failover contract — a dead peer's lease becoming stealable.
func TestLockServiceOverWire(t *testing.T) {
	net := transport.NewMemNetwork()
	locks := actor.NewLockService()
	srv := newTestServer(t, net, "coord", SessionOptions{Locks: locks})
	defer srv.close()

	dial := func() (transport.Conn, error) { return net.Dial("coord") }
	peerA := NewPeer("coord", dial, nil, fastOpts())
	defer peerA.Close()
	peerB := NewPeer("coord", dial, nil, fastOpts())
	defer peerB.Close()
	waitFor(t, "both links up", func() bool { return peerA.Alive() && peerB.Alive() })

	la, lb := peerA.Locks(), peerB.Locks()
	ok, err := la.Acquire("population/gboard", "owner-a")
	if err != nil || !ok {
		t.Fatalf("A acquire: ok=%v err=%v", ok, err)
	}
	ok, err = lb.Acquire("population/gboard", "owner-b")
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("B stole a live lease")
	}
	owner, err := lb.Owner("population/gboard")
	if err != nil {
		t.Fatal(err)
	}
	if owner != "owner-a" {
		t.Fatalf("owner = %q, want owner-a", owner)
	}

	// Re-acquire by the same owner over the same link is idempotent.
	ok, err = la.Acquire("population/gboard", "owner-a")
	if err != nil || !ok {
		t.Fatalf("A re-acquire: ok=%v err=%v", ok, err)
	}

	// Release frees the lease for other owners.
	if err := la.Release("population/gboard", "owner-a"); err != nil {
		t.Fatal(err)
	}
	ok, err = lb.Acquire("population/gboard", "owner-b")
	if err != nil || !ok {
		t.Fatalf("B acquire after release: ok=%v err=%v", ok, err)
	}

	// B's process dies: its connection-bound owner ref reads stopped, so the
	// lease is stealable — the wire analogue of a crashed local actor.
	peerB.Close()
	waitFor(t, "lease stealable after owner death", func() bool {
		ok, err := la.Acquire("population/gboard", "owner-a")
		return err == nil && ok
	})
}

// TestLockCallFailsFastWhileDown asserts lock RPCs with retries disabled
// (CallRetryBudget < 0) error immediately when the link is down instead of
// hanging until timeout — the legacy fail-fast contract callers can opt
// back into.
func TestLockCallFailsFastWhileDown(t *testing.T) {
	opts := fastOpts()
	opts.CallRetryBudget = -1
	peer := NewPeer("nowhere", func() (transport.Conn, error) {
		return nil, fmt.Errorf("no route")
	}, nil, opts)
	defer peer.Close()

	start := time.Now()
	if _, err := peer.Locks().Acquire("k", "o"); err == nil {
		t.Fatal("acquire succeeded with no link")
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("down-link acquire took %v, want fail-fast", d)
	}
	if !peer.Ref("x").Stopped() {
		t.Fatal("remote ref on a dead link must read stopped")
	}
}

// TestLockCallRetryBudgetExhausts asserts the default retry budget bounds a
// down-link call: it fails (not hangs) once the budget is spent.
func TestLockCallRetryBudgetExhausts(t *testing.T) {
	opts := fastOpts()
	opts.CallRetryBudget = 150 * time.Millisecond
	peer := NewPeer("nowhere", func() (transport.Conn, error) {
		return nil, fmt.Errorf("no route")
	}, nil, opts)
	defer peer.Close()

	start := time.Now()
	_, err := peer.Locks().Acquire("k", "o")
	if err == nil {
		t.Fatal("acquire succeeded with no link")
	}
	d := time.Since(start)
	if d < 100*time.Millisecond {
		t.Fatalf("call failed after %v — did not retry within the budget", d)
	}
	if d > 2*time.Second {
		t.Fatalf("call took %v, far beyond the 150ms budget", d)
	}
}

// TestLockCallSurvivesRedialWithinBudget is the satellite fix's contract: a
// lock RPC issued while the link is down succeeds when the peer reconnects
// within the retry budget, instead of failing the caller's round.
func TestLockCallSurvivesRedialWithinBudget(t *testing.T) {
	net := transport.NewMemNetwork()
	locks := actor.NewLockService()
	srv := newTestServer(t, net, "coord", SessionOptions{Locks: locks})
	defer srv.close()

	// The gate makes dialing fail until opened — the link starts down.
	var linkUp atomic.Bool
	opts := fastOpts()
	opts.CallRetryBudget = 3 * time.Second
	peer := NewPeer("coord", func() (transport.Conn, error) {
		if !linkUp.Load() {
			return nil, fmt.Errorf("link down")
		}
		return net.Dial("coord")
	}, nil, opts)
	defer peer.Close()

	// Issue the call while the link is down; heal it shortly after.
	time.AfterFunc(100*time.Millisecond, func() { linkUp.Store(true) })
	ok, err := peer.Locks().Acquire("population/gboard", "owner-a")
	if err != nil {
		t.Fatalf("acquire across a sub-budget redial failed: %v", err)
	}
	if !ok {
		t.Fatal("acquire across redial returned ok=false on a free lock")
	}

	// And a call issued right after a drop retries transparently too (the
	// dropped session released the lease, so the re-acquire must win).
	srv.dropConns()
	ok, err = peer.Locks().Acquire("population/gboard", "owner-a")
	if err != nil {
		t.Fatalf("acquire across a drop failed: %v", err)
	}
	if !ok {
		t.Fatal("re-acquire after the owning session died returned ok=false")
	}
}
