// Package remote makes actor references and the lock service
// location-transparent across processes (Sec. 4.1: actor instances "may be
// co-located on the same process or distributed across multiple data
// centers"). A Peer manages one outbound connection to another process —
// dial, reconnect with exponential backoff, heartbeat liveness — over
// internal/transport's length-prefixed codec. On top of it, Ref implements
// actor.Ref by marshaling messages into protocol.ActorEnvelope frames, and
// LockClient speaks the lock-service RPCs. The serving side (session.go)
// routes inbound envelopes to a local actor registry and serves the lock
// service, with per-connection owner refs whose liveness IS the connection,
// so a lease held by a dead peer is stealable exactly like one held by a
// dead local actor.
package remote

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/protocol"
	"repro/internal/transport"
)

// Dialer opens one connection to the peer (TCP or in-memory).
type Dialer func() (transport.Conn, error)

// Options tunes a Peer's connection management.
type Options struct {
	// Hello, if non-nil, is sent first on every (re)established connection
	// (e.g. a protocol.ShardHello announcing the shard's identity).
	Hello interface{}
	// HeartbeatInterval paces liveness probes (default 500ms).
	HeartbeatInterval time.Duration
	// HeartbeatMiss is how many consecutive unacknowledged probes declare
	// the peer dead (default 4).
	HeartbeatMiss int
	// BackoffMin/BackoffMax bound the reconnect backoff (defaults 50ms, 5s).
	BackoffMin time.Duration
	BackoffMax time.Duration
	// CallTimeout bounds a Call round-trip (default 5s).
	CallTimeout time.Duration
	// CallRetryBudget is the total time a lock RPC may spend retrying
	// across link drops before failing (default 2s). Within the budget, a
	// call issued while the link is down — or dropped mid-flight by a
	// reconnect — is retried with jittered backoff instead of failing fast,
	// so a sub-second redial no longer fails the caller's round. Zero or
	// negative disables retries (legacy fail-fast behavior is Budget < 0).
	CallRetryBudget time.Duration
	// OnUp/OnDown are invoked from the peer's management goroutine when the
	// connection (re)establishes or drops. They must not block.
	OnUp   func()
	OnDown func(err error)
}

func (o *Options) defaults() {
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 500 * time.Millisecond
	}
	if o.HeartbeatMiss <= 0 {
		o.HeartbeatMiss = 4
	}
	if o.BackoffMin <= 0 {
		o.BackoffMin = 50 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 5 * time.Second
	}
	if o.CallTimeout <= 0 {
		o.CallTimeout = 5 * time.Second
	}
	if o.CallRetryBudget == 0 {
		o.CallRetryBudget = 2 * time.Second
	}
}

// Validate rejects option combinations that break liveness detection. It is
// called by flag-driven binaries before handing user-supplied values to
// NewPeer; zero fields are fine (defaults fill them).
func (o Options) Validate() error {
	if o.HeartbeatInterval < 0 {
		return fmt.Errorf("remote: heartbeat interval %v must be >= 0", o.HeartbeatInterval)
	}
	if o.HeartbeatInterval > 0 && o.HeartbeatInterval < time.Millisecond {
		return fmt.Errorf("remote: heartbeat interval %v is below 1ms", o.HeartbeatInterval)
	}
	if o.HeartbeatMiss < 0 {
		return fmt.Errorf("remote: heartbeat miss budget %d must be >= 0", o.HeartbeatMiss)
	}
	if o.BackoffMin < 0 || o.BackoffMax < 0 {
		return fmt.Errorf("remote: backoff bounds must be >= 0")
	}
	if o.BackoffMin > 0 && o.BackoffMax > 0 && o.BackoffMin > o.BackoffMax {
		return fmt.Errorf("remote: backoff min %v exceeds max %v", o.BackoffMin, o.BackoffMax)
	}
	if o.CallTimeout < 0 {
		return fmt.Errorf("remote: call timeout %v must be >= 0", o.CallTimeout)
	}
	return nil
}

// Peer is one managed outbound connection to another process. It dials
// lazily, reconnects with exponential backoff after any failure, and
// declares the link dead when heartbeats go unacknowledged. Send fails fast
// while the link is down — callers own their retry semantics (an FL round
// tolerates a lost shard; it must never block on one).
type Peer struct {
	name    string
	dial    Dialer
	opts    Options
	handler func(msg interface{})

	mu     sync.Mutex
	conn   transport.Conn
	up     bool
	closed bool

	// sent/acked are heartbeat counters: sent increments per probe, acked
	// latches the highest echoed sequence.
	sent  atomic.Uint64
	acked atomic.Uint64

	callMu  sync.Mutex
	callSeq uint64
	calls   map[uint64]chan protocol.LockResponse

	done chan struct{}
}

// NewPeer starts managing a connection to the named peer. handler receives
// every inbound message that is not connection infrastructure (heartbeats,
// lock responses); it runs on the peer's reader goroutine and must not
// block indefinitely. The first dial happens immediately in the background.
func NewPeer(name string, dial Dialer, handler func(msg interface{}), opts Options) *Peer {
	opts.defaults()
	if handler == nil {
		handler = func(interface{}) {}
	}
	p := &Peer{
		name:    name,
		dial:    dial,
		opts:    opts,
		handler: handler,
		calls:   make(map[uint64]chan protocol.LockResponse),
		done:    make(chan struct{}),
	}
	go p.run()
	return p
}

// Name returns the peer's label.
func (p *Peer) Name() string { return p.name }

// Alive reports whether the link is currently up.
func (p *Peer) Alive() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.up && !p.closed
}

// Send transmits one message, failing immediately when the link is down
// (the management goroutine keeps redialing in the background).
func (p *Peer) Send(msg interface{}) error {
	p.mu.Lock()
	conn, up := p.conn, p.up
	p.mu.Unlock()
	if !up || conn == nil {
		return fmt.Errorf("remote: peer %s is down", p.name)
	}
	return conn.Send(msg)
}

// Close tears the peer down permanently.
func (p *Peer) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	conn := p.conn
	p.mu.Unlock()
	close(p.done)
	if conn != nil {
		conn.Close()
	}
	p.failCalls()
}

// run is the management loop: dial, pump, backoff, repeat.
func (p *Peer) run() {
	backoff := p.opts.BackoffMin
	for {
		select {
		case <-p.done:
			return
		default:
		}
		conn, err := p.dial()
		if err != nil {
			select {
			case <-p.done:
				return
			case <-time.After(backoff):
			}
			backoff *= 2
			if backoff > p.opts.BackoffMax {
				backoff = p.opts.BackoffMax
			}
			continue
		}
		if p.opts.Hello != nil {
			if err := conn.Send(p.opts.Hello); err != nil {
				conn.Close()
				continue
			}
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			return
		}
		p.conn = conn
		p.up = true
		p.sent.Store(0)
		p.acked.Store(0)
		p.mu.Unlock()
		backoff = p.opts.BackoffMin
		if p.opts.OnUp != nil {
			p.opts.OnUp()
		}

		err = p.pump(conn)

		p.mu.Lock()
		p.up = false
		p.conn = nil
		closed := p.closed
		p.mu.Unlock()
		conn.Close()
		p.failCalls()
		if p.opts.OnDown != nil && !closed {
			p.opts.OnDown(err)
		}
		if closed {
			return
		}
	}
}

// pump services one live connection: a reader goroutine dispatches inbound
// messages while this goroutine drives the heartbeat clock. Returns when
// the connection dies or heartbeats lapse.
func (p *Peer) pump(conn transport.Conn) error {
	readErr := make(chan error, 1)
	go func() {
		for {
			msg, err := conn.Recv()
			if err != nil {
				readErr <- err
				return
			}
			p.dispatch(conn, msg)
		}
	}()

	tick := time.NewTicker(p.opts.HeartbeatInterval)
	defer tick.Stop()
	for {
		select {
		case <-p.done:
			return fmt.Errorf("remote: peer %s closed", p.name)
		case err := <-readErr:
			return err
		case <-tick.C:
			seq := p.sent.Add(1)
			if seq-p.acked.Load() > uint64(p.opts.HeartbeatMiss) {
				return fmt.Errorf("remote: peer %s missed %d heartbeats", p.name, p.opts.HeartbeatMiss)
			}
			if err := conn.Send(protocol.Heartbeat{Seq: seq}); err != nil {
				return err
			}
			// Re-announce the hello once per miss window: the connection-open
			// hello rides an unacknowledged link, and a peer that loses it
			// would otherwise stay connected-but-unregistered forever. The
			// receiver treats duplicate hellos on one session as no-ops.
			if p.opts.Hello != nil && seq%uint64(p.opts.HeartbeatMiss) == 0 {
				if err := conn.Send(p.opts.Hello); err != nil {
					return err
				}
			}
		}
	}
}

// dispatch routes one inbound message: heartbeat echoes and lock responses
// are infrastructure, everything else goes to the handler.
func (p *Peer) dispatch(conn transport.Conn, msg interface{}) {
	switch m := msg.(type) {
	case protocol.Heartbeat:
		if m.Ack {
			// Latch the highest acked sequence.
			for {
				cur := p.acked.Load()
				if m.Seq <= cur || p.acked.CompareAndSwap(cur, m.Seq) {
					break
				}
			}
		} else {
			_ = conn.Send(protocol.Heartbeat{Seq: m.Seq, Ack: true})
		}
	case protocol.LockResponse:
		p.callMu.Lock()
		ch, ok := p.calls[m.Seq]
		if ok {
			delete(p.calls, m.Seq)
		}
		p.callMu.Unlock()
		if ok {
			ch <- m
		}
	default:
		p.handler(msg)
	}
}

// call performs one seq-correlated lock RPC over the shared link, retrying
// across link drops within the CallRetryBudget: a call issued during a
// redial window — or torn mid-flight by a reconnect — re-sends with a fresh
// sequence and jittered backoff instead of failing the caller. The lock RPCs
// are idempotent (Acquire re-asserts the same owner, Release and Owner are
// repeatable), so a retry after a torn-but-delivered request is safe. A
// CallTimeout with the link up is NOT retried: the peer is reachable and
// silent, and re-sending would only double the wait.
func (p *Peer) call(req protocol.LockRequest) (protocol.LockResponse, error) {
	deadline := time.Now().Add(p.opts.CallRetryBudget)
	backoff := 10 * time.Millisecond
	for {
		resp, err, retryable := p.callOnce(req)
		if err == nil || !retryable || p.opts.CallRetryBudget <= 0 {
			return resp, err
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return resp, fmt.Errorf("%w (retry budget %v exhausted)", err, p.opts.CallRetryBudget)
		}
		// Jittered backoff, capped to what the budget has left.
		wait := backoff + time.Duration(rand.Int63n(int64(backoff)))
		if wait > remain {
			wait = remain
		}
		select {
		case <-p.done:
			return protocol.LockResponse{}, fmt.Errorf("remote: peer %s closed", p.name)
		case <-time.After(wait):
		}
		if backoff < 80*time.Millisecond {
			backoff *= 2
		}
	}
}

// callOnce performs a single RPC attempt. retryable marks failures caused
// by link churn (down at send, dropped mid-flight) rather than by the peer.
func (p *Peer) callOnce(req protocol.LockRequest) (resp protocol.LockResponse, err error, retryable bool) {
	ch := make(chan protocol.LockResponse, 1)
	p.callMu.Lock()
	p.callSeq++
	req.Seq = p.callSeq
	p.calls[req.Seq] = ch
	p.callMu.Unlock()
	if err := p.Send(req); err != nil {
		p.callMu.Lock()
		delete(p.calls, req.Seq)
		p.callMu.Unlock()
		return protocol.LockResponse{}, err, true
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			return protocol.LockResponse{}, fmt.Errorf("remote: peer %s dropped while call in flight", p.name), true
		}
		return resp, nil, false
	case <-time.After(p.opts.CallTimeout):
		p.callMu.Lock()
		delete(p.calls, req.Seq)
		p.callMu.Unlock()
		return protocol.LockResponse{}, fmt.Errorf("remote: call to peer %s timed out", p.name), false
	}
}

// failCalls aborts every in-flight call (connection dropped).
func (p *Peer) failCalls() {
	p.callMu.Lock()
	calls := p.calls
	p.calls = make(map[uint64]chan protocol.LockResponse)
	p.callMu.Unlock()
	for _, ch := range calls {
		close(ch)
	}
}
