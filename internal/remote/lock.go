package remote

import (
	"repro/internal/protocol"
)

// LockClient speaks the Sec. 4.2 lock service over a peer link: the
// coordinator process owns the actor.LockService, and other processes
// acquire and release leases through these RPCs. The serving side binds
// each remote owner to the connection it arrived on, so a peer that
// vanishes loses its leases the way a crashed local actor does.
type LockClient struct {
	peer *Peer
}

// Locks returns a lock-service client over this peer.
func (p *Peer) Locks() *LockClient { return &LockClient{peer: p} }

// Acquire attempts to take the lease for key on behalf of the named owner.
func (c *LockClient) Acquire(key, owner string) (bool, error) {
	resp, err := c.peer.call(protocol.LockRequest{Op: protocol.LockAcquire, Key: key, Owner: owner})
	if err != nil {
		return false, err
	}
	return resp.OK, nil
}

// Release frees the lease if the named owner holds it through this link.
func (c *LockClient) Release(key, owner string) error {
	_, err := c.peer.call(protocol.LockRequest{Op: protocol.LockRelease, Key: key, Owner: owner})
	return err
}

// Owner returns the current live owner of key ("" when free).
func (c *LockClient) Owner(key string) (string, error) {
	resp, err := c.peer.call(protocol.LockRequest{Op: protocol.LockOwner, Key: key})
	if err != nil {
		return "", err
	}
	if !resp.OK {
		return "", nil
	}
	return resp.Owner, nil
}
