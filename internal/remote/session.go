package remote

import (
	"fmt"
	"sync"

	"repro/internal/actor"
	"repro/internal/protocol"
	"repro/internal/transport"
)

// Registry names the local actors a peer process may address through
// ActorEnvelope frames. Only registered actors are reachable — a remote
// peer cannot send to arbitrary mailboxes.
type Registry struct {
	mu   sync.Mutex
	refs map[string]actor.Ref
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{refs: make(map[string]actor.Ref)}
}

// Register exposes ref to remote peers under name (latest wins).
func (g *Registry) Register(name string, ref actor.Ref) {
	g.mu.Lock()
	g.refs[name] = ref
	g.mu.Unlock()
}

// Deregister removes a name.
func (g *Registry) Deregister(name string) {
	g.mu.Lock()
	delete(g.refs, name)
	g.mu.Unlock()
}

// Lookup resolves a name.
func (g *Registry) Lookup(name string) (actor.Ref, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	r, ok := g.refs[name]
	return r, ok
}

// SessionOptions configures the serving side of one accepted peer
// connection.
type SessionOptions struct {
	// Registry resolves ActorEnvelope targets; nil rejects all envelopes.
	Registry *Registry
	// Locks, if non-nil, serves the lock service over this connection: the
	// Sec. 4.2 shared locking service, with remote owners represented by
	// per-connection refs whose liveness is the connection itself.
	Locks *actor.LockService
	// Handle receives every message that is not connection infrastructure
	// (heartbeats, envelopes, lock RPCs). It runs on the session goroutine.
	Handle func(msg interface{})
	// SendQueue bounds the asynchronous Send queue (default 64). Session.Send
	// enqueues and returns; a writer goroutine drains to the connection, so a
	// slow or fault-injected link cannot wedge the coordinator actor behind
	// one blocking write. A full queue fails the Send — the caller treats it
	// exactly like a dead link.
	SendQueue int
}

// Session is one accepted peer connection being served.
type Session struct {
	conn transport.Conn
	opts SessionOptions

	mu     sync.Mutex
	owners map[string]*connRef
	closed bool
	done   chan struct{}
	sendQ  chan interface{}
}

// connRef is the serving side's stand-in for a remote lock owner: its
// liveness is the connection's. When the peer's connection dies, every
// lease its owners hold becomes stealable — the wire analogue of a local
// actor being stopped.
type connRef struct {
	name string
	s    *Session
}

func (r *connRef) Name() string { return r.name }
func (r *connRef) Send(msg actor.Message) error {
	return fmt.Errorf("remote: %s is a lock owner stub", r.name)
}
func (r *connRef) Stop()         {}
func (r *connRef) Stopped() bool { return r.s.Closed() }

var _ actor.Ref = (*connRef)(nil)

// NewSession wraps an accepted connection. Run must be called to serve it.
func NewSession(conn transport.Conn, opts SessionOptions) *Session {
	if opts.Handle == nil {
		opts.Handle = func(interface{}) {}
	}
	if opts.SendQueue <= 0 {
		opts.SendQueue = 64
	}
	s := &Session{
		conn:   conn,
		opts:   opts,
		owners: make(map[string]*connRef),
		done:   make(chan struct{}),
		sendQ:  make(chan interface{}, opts.SendQueue),
	}
	go s.writer()
	return s
}

// writer drains the bounded send queue to the connection. A write error
// closes the session (the reader in Run sees the close and returns).
func (s *Session) writer() {
	for {
		select {
		case <-s.done:
			return
		case msg := <-s.sendQ:
			if err := s.conn.Send(msg); err != nil {
				s.Close()
				return
			}
		}
	}
}

// Closed reports whether the session's connection has ended.
func (s *Session) Closed() bool {
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

// Close tears the session down; leases held through it become stealable.
func (s *Session) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.done)
	}
	s.mu.Unlock()
	s.conn.Close()
}

// Send enqueues one message for the writer goroutine (round configs,
// finalizes — the server side talks back on the same link). It never blocks:
// a closed session or a full queue (a link wedged under injected latency)
// fails immediately, and the caller handles it like a dead link.
func (s *Session) Send(msg interface{}) error {
	if s.Closed() {
		return fmt.Errorf("remote: session closed")
	}
	select {
	case s.sendQ <- msg:
		return nil
	default:
		return fmt.Errorf("remote: session send queue full (%d)", s.opts.SendQueue)
	}
}

// Run serves the connection until it dies, answering heartbeats, routing
// envelopes, and serving lock RPCs. It always returns the terminal receive
// error and leaves the session Closed.
func (s *Session) Run() error {
	defer s.Close()
	for {
		msg, err := s.conn.Recv()
		if err != nil {
			return err
		}
		switch m := msg.(type) {
		case protocol.Heartbeat:
			if !m.Ack {
				if err := s.conn.Send(protocol.Heartbeat{Seq: m.Seq, Ack: true}); err != nil {
					return err
				}
			}
		case protocol.ActorEnvelope:
			s.deliver(m)
		case protocol.LockRequest:
			if err := s.conn.Send(s.serveLock(m)); err != nil {
				return err
			}
		default:
			s.opts.Handle(msg)
		}
	}
}

// deliver routes one envelope to the registered local actor; unknown
// targets and dead actors are dropped (the sender's liveness signal is the
// heartbeat, not per-message acks).
func (s *Session) deliver(e protocol.ActorEnvelope) {
	if s.opts.Registry == nil {
		return
	}
	ref, ok := s.opts.Registry.Lookup(e.Target)
	if !ok {
		return
	}
	msg, err := DecodeEnvelope(e)
	if err != nil {
		return
	}
	_ = ref.Send(msg)
}

// serveLock executes one lock RPC against the local LockService on behalf
// of this connection's named owner.
func (s *Session) serveLock(req protocol.LockRequest) protocol.LockResponse {
	resp := protocol.LockResponse{Seq: req.Seq}
	if s.opts.Locks == nil {
		return resp
	}
	switch req.Op {
	case protocol.LockAcquire:
		resp.OK = s.opts.Locks.Acquire(req.Key, s.ownerRef(req.Owner))
	case protocol.LockRelease:
		s.opts.Locks.Release(req.Key, s.ownerRef(req.Owner))
		resp.OK = true
	case protocol.LockOwner:
		if cur := s.opts.Locks.Owner(req.Key); cur != nil {
			resp.OK = true
			resp.Owner = cur.Name()
		}
	}
	return resp
}

// ownerRef returns this session's stable ref for an owner name, so a
// re-acquire by the same owner over the same connection compares equal.
func (s *Session) ownerRef(name string) actor.Ref {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.owners[name]; ok {
		return r
	}
	r := &connRef{name: name, s: s}
	s.owners[name] = r
	return r
}
