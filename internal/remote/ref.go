package remote

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/actor"
	"repro/internal/protocol"
)

// wrapped is the gob envelope inside a protocol.ActorEnvelope payload; it
// exists so gob can carry interface-typed messages. Control-plane messages
// crossing process boundaries must be gob-registered by their package.
type wrapped struct {
	Msg interface{}
}

// Ref is the remote actor.Ref implementation: a handle to an actor living
// in the peer process, addressed by registry name. Send marshals the
// message into an ActorEnvelope frame on the peer link; Stopped reflects
// the link's heartbeat liveness, so supervision-style checks (and lock
// leases) treat an unreachable peer's actors as dead. In-process refs never
// pass through here — local sends stay a channel operation.
type Ref struct {
	peer   *Peer
	target string
}

// Ref returns a location-transparent reference to the named actor on the
// peer process.
func (p *Peer) Ref(target string) *Ref {
	return &Ref{peer: p, target: target}
}

// Name implements actor.Ref.
func (r *Ref) Name() string { return r.target }

// Send implements actor.Ref: the message crosses the wire as a
// gob-in-envelope frame and is delivered to the peer's registered actor.
func (r *Ref) Send(msg actor.Message) error {
	payload, err := encodeEnvelopePayload(msg)
	if err != nil {
		return err
	}
	return r.peer.Send(protocol.ActorEnvelope{Target: r.target, Payload: payload})
}

// Stop implements actor.Ref. Stopping a remote actor is its owning
// process's concern; a remote handle going away must not kill it, so this
// is a no-op (matching how dropping a local Ref does not stop the actor).
func (r *Ref) Stop() {}

// Stopped implements actor.Ref: true while the peer link is down.
func (r *Ref) Stopped() bool { return !r.peer.Alive() }

var _ actor.Ref = (*Ref)(nil)

// encodeEnvelopePayload gob-encodes one actor message for the wire.
func encodeEnvelopePayload(msg actor.Message) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wrapped{Msg: msg}); err != nil {
		return nil, fmt.Errorf("remote: envelope encode: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeEnvelope unwraps an ActorEnvelope's payload back into the original
// actor message.
func DecodeEnvelope(e protocol.ActorEnvelope) (actor.Message, error) {
	var w wrapped
	if err := gob.NewDecoder(bytes.NewReader(e.Payload)).Decode(&w); err != nil {
		return nil, fmt.Errorf("remote: envelope decode: %w", err)
	}
	return w.Msg, nil
}
