package storage

import (
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/metrics"
	"repro/internal/tensor"
)

func ckpt(task string, round int64) *checkpoint.Checkpoint {
	return &checkpoint.Checkpoint{
		TaskName: task, Round: round, Weight: 100,
		Params: tensor.Vector{float64(round), 2, 3},
	}
}

func testStore(t *testing.T, s Store) {
	t.Helper()
	if _, err := s.LatestCheckpoint("missing"); err == nil {
		t.Fatal("missing task should error")
	}
	if err := s.PutCheckpoint(ckpt("", 1)); err == nil {
		t.Fatal("empty task name should error")
	}
	if err := s.PutCheckpoint(ckpt("task-a", 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutCheckpoint(ckpt("task-a", 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutCheckpoint(ckpt("task-b", 9)); err != nil {
		t.Fatal(err)
	}
	got, err := s.LatestCheckpoint("task-a")
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != 2 || got.Params[0] != 2 {
		t.Fatalf("latest = %+v", got)
	}
	gotB, _ := s.LatestCheckpoint("task-b")
	if gotB.Round != 9 {
		t.Fatalf("task-b latest = %+v", gotB)
	}

	// Metrics.
	if err := s.PutMetrics(&metrics.Materialized{TaskName: "task-a", Round: 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutMetrics(&metrics.Materialized{TaskName: "task-a", Round: 1}); err != nil {
		t.Fatal(err)
	}
	ms, err := s.Metrics("task-a")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[0].Round != 1 || ms[1].Round != 2 {
		t.Fatalf("metrics order: %+v", ms)
	}
	if err := s.PutMetrics(&metrics.Materialized{}); err == nil {
		t.Fatal("metrics without task should error")
	}

	// Task registry snapshots: nil before any save, latest-wins after.
	if b, err := s.TaskSet(); err != nil || b != nil {
		t.Fatalf("unsaved task set = %v, %v", b, err)
	}
	if err := s.PutTaskSet([]byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutTaskSet([]byte("v2")); err != nil {
		t.Fatal(err)
	}
	if b, err := s.TaskSet(); err != nil || string(b) != "v2" {
		t.Fatalf("task set = %q, %v", b, err)
	}
}

func TestMemStore(t *testing.T) { testStore(t, NewMem()) }

func TestFileStore(t *testing.T) {
	s, err := NewFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	testStore(t, s)
}

func TestMemStoreIsolation(t *testing.T) {
	s := NewMem()
	c := ckpt("t", 1)
	_ = s.PutCheckpoint(c)
	c.Params[0] = 999 // mutate caller's copy
	got, _ := s.LatestCheckpoint("t")
	if got.Params[0] == 999 {
		t.Fatal("store must deep-copy checkpoints")
	}
	got.Params[1] = 888
	again, _ := s.LatestCheckpoint("t")
	if again.Params[1] == 888 {
		t.Fatal("store must return copies")
	}
}

func TestFileStoreRecovery(t *testing.T) {
	dir := t.TempDir()
	s1, _ := NewFile(dir)
	_ = s1.PutCheckpoint(ckpt("pop/task", 1))
	_ = s1.PutCheckpoint(ckpt("pop/task", 12))

	// A fresh store over the same directory must find the latest round.
	s2, _ := NewFile(dir)
	got, err := s2.LatestCheckpoint("pop/task")
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != 12 {
		t.Fatalf("recovered round = %d, want 12", got.Round)
	}
	if got.TaskName != "pop/task" {
		t.Fatalf("recovered task = %q", got.TaskName)
	}

	// The task registry snapshot is durable too.
	if err := s1.PutTaskSet([]byte("registry")); err != nil {
		t.Fatal(err)
	}
	s3, _ := NewFile(dir)
	if b, err := s3.TaskSet(); err != nil || string(b) != "registry" {
		t.Fatalf("recovered task set = %q, %v", b, err)
	}
}

func TestSanitizeTask(t *testing.T) {
	if got := sanitizeTask("pop/task:v1"); got != "pop_task_v1" {
		t.Fatalf("sanitize = %q", got)
	}
}
