// Package storage is the persistent storage behind the FL server: committed
// global model checkpoints and materialized round metrics (Sec. 7.4). Per
// the design, *nothing* reaches this layer until a round's aggregate is
// final (Sec. 4.2: "No information for a round is written to persistent
// storage until it is fully aggregated") — the aggregator actors enforce
// that; this package just stores what they commit.
package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/checkpoint"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// Store persists committed round results.
type Store interface {
	// PutCheckpoint commits a global model checkpoint for a task.
	PutCheckpoint(c *checkpoint.Checkpoint) error
	// LatestCheckpoint returns the newest committed checkpoint for a task.
	LatestCheckpoint(task string) (*checkpoint.Checkpoint, error)
	// PutMetrics materializes a round's metric summaries.
	PutMetrics(m *metrics.Materialized) error
	// Metrics returns all materialized metrics for a task in round order.
	Metrics(task string) ([]*metrics.Materialized, error)
	// PutTaskSet persists the serialized FL task registry of the population
	// this store backs (stores are per-population). The registry in memory
	// is the authority; storage keeps only the latest snapshot so a
	// restarted process resumes its tasks — states, policies, stats.
	PutTaskSet(b []byte) error
	// TaskSet returns the latest persisted task registry, or nil when none
	// has been saved.
	TaskSet() ([]byte, error)
}

// Both built-in stores also implement obs.TraceStore, persisting one
// round-trace record per round alongside the checkpoints. Trace storage is
// deliberately NOT part of the Store interface — callers type-assert — so
// custom Store implementations (tests, adapters) keep compiling.

// Mem is an in-memory Store for simulation and tests.
type Mem struct {
	mu          sync.Mutex
	checkpoints map[string][]*checkpoint.Checkpoint
	metrics     map[string][]*metrics.Materialized
	taskSet     []byte
	traces      []obs.RoundTrace
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{
		checkpoints: make(map[string][]*checkpoint.Checkpoint),
		metrics:     make(map[string][]*metrics.Materialized),
	}
}

// PutCheckpoint implements Store.
func (s *Mem) PutCheckpoint(c *checkpoint.Checkpoint) error {
	if c.TaskName == "" {
		return fmt.Errorf("storage: checkpoint without task name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.checkpoints[c.TaskName] = append(s.checkpoints[c.TaskName], c.Clone())
	return nil
}

// LatestCheckpoint implements Store.
func (s *Mem) LatestCheckpoint(task string) (*checkpoint.Checkpoint, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cs := s.checkpoints[task]
	if len(cs) == 0 {
		return nil, fmt.Errorf("storage: no checkpoint for task %q", task)
	}
	return cs[len(cs)-1].Clone(), nil
}

// PutMetrics implements Store.
func (s *Mem) PutMetrics(m *metrics.Materialized) error {
	if m.TaskName == "" {
		return fmt.Errorf("storage: metrics without task name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metrics[m.TaskName] = append(s.metrics[m.TaskName], m)
	return nil
}

// PutTaskSet implements Store.
func (s *Mem) PutTaskSet(b []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.taskSet = append([]byte(nil), b...)
	return nil
}

// TaskSet implements Store.
func (s *Mem) TaskSet() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.taskSet == nil {
		return nil, nil
	}
	return append([]byte(nil), s.taskSet...), nil
}

// PutRoundTrace implements obs.TraceStore.
func (s *Mem) PutRoundTrace(t obs.RoundTrace) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.traces = append(s.traces, t)
	return nil
}

// RoundTraces returns every stored round trace in arrival order.
func (s *Mem) RoundTraces() []obs.RoundTrace {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]obs.RoundTrace(nil), s.traces...)
}

// Metrics implements Store.
func (s *Mem) Metrics(task string) ([]*metrics.Materialized, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := append([]*metrics.Materialized(nil), s.metrics[task]...)
	sort.Slice(out, func(i, j int) bool { return out[i].Round < out[j].Round })
	return out, nil
}

// File is a file-backed Store: checkpoints are written as binary files
// under dir/<task>/round-<n>.ckpt. Metrics stay in memory (they are cheap
// and regenerable); checkpoints are the durable artifact.
type File struct {
	dir     string
	mem     *Mem // metrics + latest-lookup cache
	traceMu sync.Mutex
}

// NewFile creates (if needed) and opens a file-backed store rooted at dir.
func NewFile(dir string) (*File, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	return &File{dir: dir, mem: NewMem()}, nil
}

func sanitizeTask(task string) string {
	out := make([]rune, 0, len(task))
	for _, r := range task {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// PutCheckpoint implements Store.
func (s *File) PutCheckpoint(c *checkpoint.Checkpoint) error {
	if c.TaskName == "" {
		return fmt.Errorf("storage: checkpoint without task name")
	}
	taskDir := filepath.Join(s.dir, sanitizeTask(c.TaskName))
	if err := os.MkdirAll(taskDir, 0o755); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	b, err := c.Marshal(checkpoint.EncodingFloat64)
	if err != nil {
		return err
	}
	path := filepath.Join(taskDir, fmt.Sprintf("round-%010d.ckpt", c.Round))
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	return s.mem.PutCheckpoint(c)
}

// LatestCheckpoint implements Store. It prefers the in-memory cache and
// falls back to scanning the directory (recovery after restart).
func (s *File) LatestCheckpoint(task string) (*checkpoint.Checkpoint, error) {
	if c, err := s.mem.LatestCheckpoint(task); err == nil {
		return c, nil
	}
	taskDir := filepath.Join(s.dir, sanitizeTask(task))
	entries, err := os.ReadDir(taskDir)
	if err != nil || len(entries) == 0 {
		return nil, fmt.Errorf("storage: no checkpoint for task %q", task)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".ckpt" {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("storage: no checkpoint for task %q", task)
	}
	sort.Strings(names)
	b, err := os.ReadFile(filepath.Join(taskDir, names[len(names)-1]))
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	return checkpoint.Unmarshal(b)
}

// PutMetrics implements Store.
func (s *File) PutMetrics(m *metrics.Materialized) error { return s.mem.PutMetrics(m) }

// Metrics implements Store.
func (s *File) Metrics(task string) ([]*metrics.Materialized, error) { return s.mem.Metrics(task) }

// tracesFile is the append-only JSONL round-trace log, one line per round.
const tracesFile = "traces.jsonl"

// PutRoundTrace implements obs.TraceStore: the record is appended as one
// JSONL line to dir/traces.jsonl (and mirrored in the memory cache).
func (s *File) PutRoundTrace(t obs.RoundTrace) error {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	f, err := os.OpenFile(filepath.Join(s.dir, tracesFile),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	_, werr := f.Write(t.MarshalJSONL())
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("storage: %w", werr)
	}
	return s.mem.PutRoundTrace(t)
}

// RoundTraces returns the traces recorded by THIS process (the in-memory
// mirror; dir/traces.jsonl is the durable artifact across restarts).
func (s *File) RoundTraces() []obs.RoundTrace { return s.mem.RoundTraces() }

// taskSetFile is where a File store keeps the task registry snapshot.
const taskSetFile = "tasks.gob"

// PutTaskSet implements Store: the snapshot is written atomically so a
// crash mid-write leaves the previous registry intact.
func (s *File) PutTaskSet(b []byte) error {
	path := filepath.Join(s.dir, taskSetFile)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	return nil
}

// TaskSet implements Store.
func (s *File) TaskSet() ([]byte, error) {
	b, err := os.ReadFile(filepath.Join(s.dir, taskSetFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	return b, nil
}
