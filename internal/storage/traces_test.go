package storage

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func traceFor(round int64) obs.RoundTrace {
	return obs.RoundTrace{
		TaskID:     "pop/train",
		Round:      round,
		Start:      time.Unix(1700000000, 0).UTC(),
		TotalNanos: int64(time.Second),
		Phases:     map[string]int64{obs.PhaseCommit: int64(5 * time.Millisecond)},
		Committed:  true,
		Reports:    12,
	}
}

func TestMemRoundTraces(t *testing.T) {
	s := NewMem()
	var store obs.TraceStore = s // Mem must satisfy the optional interface
	if err := store.PutRoundTrace(traceFor(1)); err != nil {
		t.Fatal(err)
	}
	if err := store.PutRoundTrace(traceFor(2)); err != nil {
		t.Fatal(err)
	}
	got := s.RoundTraces()
	if len(got) != 2 || got[0].Round != 1 || got[1].Round != 2 {
		t.Fatalf("traces: %+v", got)
	}
}

func TestFileRoundTracesJSONL(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	var store obs.TraceStore = s
	for round := int64(1); round <= 3; round++ {
		if err := store.PutRoundTrace(traceFor(round)); err != nil {
			t.Fatal(err)
		}
	}
	b, err := os.ReadFile(filepath.Join(dir, tracesFile))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(b), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("traces.jsonl has %d lines:\n%s", len(lines), b)
	}
	for i, line := range lines {
		var tr obs.RoundTrace
		if err := json.Unmarshal([]byte(line), &tr); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		if tr.Round != int64(i+1) || !tr.Committed || tr.Phases[obs.PhaseCommit] == 0 {
			t.Fatalf("line %d decoded wrong: %+v", i, tr)
		}
	}
	if got := s.RoundTraces(); len(got) != 3 {
		t.Fatalf("memory mirror has %d traces", len(got))
	}
}
