package device

import "sync"

// Conditions are the device states that gate FL participation: "the phone
// is idle, charging, and connected to an unmetered network such as WiFi".
type Conditions struct {
	Idle      bool
	Charging  bool
	Unmetered bool
}

// Eligible reports whether all conditions hold.
func (c Conditions) Eligible() bool { return c.Idle && c.Charging && c.Unmetered }

// Eligibility tracks the device's live conditions; the FL runtime polls it
// between plan operations and aborts when conditions lapse ("Once started,
// the FL runtime will abort, freeing the allocated resources, if these
// conditions are no longer met").
type Eligibility struct {
	mu   sync.Mutex
	cond Conditions
}

// NewEligibility starts with the given conditions.
func NewEligibility(c Conditions) *Eligibility {
	return &Eligibility{cond: c}
}

// Set replaces the current conditions.
func (e *Eligibility) Set(c Conditions) {
	e.mu.Lock()
	e.cond = c
	e.mu.Unlock()
}

// Get returns the current conditions.
func (e *Eligibility) Get() Conditions {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cond
}

// OK reports whether the device is currently eligible.
func (e *Eligibility) OK() bool { return e.Get().Eligible() }
