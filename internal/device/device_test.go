package device

import (
	"strings"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/nn"
	"repro/internal/plan"
	"repro/internal/tensor"
)

var t0 = time.Date(2019, 3, 1, 2, 0, 0, 0, time.UTC)

func trainingPlan(t *testing.T, fused bool) *plan.Plan {
	t.Helper()
	p, err := plan.Generate(plan.Config{
		TaskID:        "pop/train",
		Population:    "pop",
		Model:         nn.Spec{Kind: nn.KindLogistic, Features: 2, Classes: 2, Seed: 1},
		StoreName:     "clicks",
		BatchSize:     4,
		Epochs:        1,
		LearningRate:  0.1,
		TargetDevices: 10,
		UseFusedOps:   fused,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func globalCkpt(t *testing.T, p *plan.Plan) *checkpoint.Checkpoint {
	t.Helper()
	m, err := p.Device.Model.Build()
	if err != nil {
		t.Fatal(err)
	}
	params := make(tensor.Vector, m.NumParams())
	m.ReadParams(params)
	return &checkpoint.Checkpoint{TaskName: p.ID, Round: 3, Params: params}
}

func filledStore(t *testing.T) *MemStore {
	t.Helper()
	s, err := NewMemStore("clicks", 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(2)
	for i := 0; i < 20; i++ {
		s.Add(nn.Example{X: []float64{rng.NormFloat64(), rng.NormFloat64()}, Y: i % 2}, t0)
	}
	return s
}

func TestMemStoreBasics(t *testing.T) {
	if _, err := NewMemStore("", 10, 0); err == nil {
		t.Fatal("empty name must fail")
	}
	if _, err := NewMemStore("x", 0, 0); err == nil {
		t.Fatal("zero cap must fail")
	}
	s, _ := NewMemStore("x", 3, 0)
	for i := 0; i < 5; i++ {
		s.Add(nn.Example{Y: i}, t0)
	}
	if s.Count() != 3 {
		t.Fatalf("footprint cap violated: %d", s.Count())
	}
	got := s.Select(plan.SelectionCriteria{}, t0)
	if len(got) != 3 || got[0].Y != 4 {
		t.Fatalf("newest-first select: %+v", got)
	}
}

func TestMemStoreExpiration(t *testing.T) {
	s, _ := NewMemStore("x", 100, time.Hour)
	s.Add(nn.Example{Y: 1}, t0)
	s.Add(nn.Example{Y: 2}, t0.Add(90*time.Minute))
	got := s.Select(plan.SelectionCriteria{}, t0.Add(2*time.Hour))
	if len(got) != 1 || got[0].Y != 2 {
		t.Fatalf("expired entry survived: %+v", got)
	}
	if s.Count() != 1 {
		t.Fatalf("Count after prune = %d", s.Count())
	}
}

func TestMemStoreMaxAgeAndMaxExamples(t *testing.T) {
	s, _ := NewMemStore("x", 100, 0)
	for i := 0; i < 10; i++ {
		s.Add(nn.Example{Y: i}, t0.Add(time.Duration(i)*time.Minute))
	}
	now := t0.Add(10 * time.Minute)
	got := s.Select(plan.SelectionCriteria{MaxAge: 5 * time.Minute}, now)
	if len(got) != 5 {
		t.Fatalf("MaxAge select = %d examples, want 5", len(got))
	}
	got = s.Select(plan.SelectionCriteria{MaxExamples: 3}, now)
	if len(got) != 3 || got[0].Y != 9 {
		t.Fatalf("MaxExamples select: %+v", got)
	}
}

func TestEligibility(t *testing.T) {
	e := NewEligibility(Conditions{Idle: true, Charging: true, Unmetered: true})
	if !e.OK() {
		t.Fatal("should be eligible")
	}
	e.Set(Conditions{Idle: true, Charging: false, Unmetered: true})
	if e.OK() {
		t.Fatal("not charging should be ineligible")
	}
	for _, c := range []Conditions{
		{Idle: false, Charging: true, Unmetered: true},
		{Idle: true, Charging: true, Unmetered: false},
		{},
	} {
		if c.Eligible() {
			t.Fatalf("%+v should be ineligible", c)
		}
	}
}

func TestSchedulerFIFOAndNoOverlap(t *testing.T) {
	s := NewScheduler()
	var order []string
	for _, pop := range []string{"a", "b", "c"} {
		pop := pop
		if err := s.Enqueue(&Job{Population: pop, Run: func() { order = append(order, pop) }}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Pending() != 3 {
		t.Fatalf("pending = %d", s.Pending())
	}
	n, err := s.DrainAll()
	if err != nil || n != 3 {
		t.Fatalf("drain: %d %v", n, err)
	}
	if strings.Join(order, "") != "abc" {
		t.Fatalf("order = %v", order)
	}
	if h := s.History(); len(h) != 3 || h[0] != "a" {
		t.Fatalf("history = %v", h)
	}
}

func TestSchedulerRejectsReentrantRun(t *testing.T) {
	s := NewScheduler()
	var innerErr error
	_ = s.Enqueue(&Job{Population: "outer", Run: func() {
		_ = s.Enqueue(&Job{Population: "inner", Run: func() {}})
		_, innerErr = s.RunNext()
	}})
	if _, err := s.RunNext(); err != nil {
		t.Fatal(err)
	}
	if innerErr == nil {
		t.Fatal("re-entrant RunNext must be rejected (no parallel sessions)")
	}
}

func TestSchedulerNilJob(t *testing.T) {
	s := NewScheduler()
	if err := s.Enqueue(nil); err == nil {
		t.Fatal("nil job must fail")
	}
	if err := s.Enqueue(&Job{Population: "x"}); err == nil {
		t.Fatal("job without Run must fail")
	}
}

func TestExecuteTrainingPlan(t *testing.T) {
	p := trainingPlan(t, false)
	r := NewRuntime("dev-1", 3, nil, 7)
	if err := r.RegisterStore(filledStore(t)); err != nil {
		t.Fatal(err)
	}
	global := globalCkpt(t, p)
	res, err := r.Execute(p, global, t0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Update == nil {
		t.Fatal("training plan must produce an update")
	}
	if res.Update.Weight != 20 {
		t.Fatalf("update weight = %v, want 20", res.Update.Weight)
	}
	if res.Update.Round != 3 || res.Update.TaskName != p.ID {
		t.Fatalf("update metadata: %+v", res.Update)
	}
	if res.Session.Shape() != "-v[]" {
		t.Fatalf("session shape = %q, want -v[] (upload logged by caller)", res.Session.Shape())
	}
	if res.Metrics["num_examples"] != 20 {
		t.Fatalf("metrics: %+v", res.Metrics)
	}
}

func TestExecuteFusedPlanEquivalent(t *testing.T) {
	// A fused plan and its versioned rewrite must produce the same update
	// ("treated as semantically equivalent").
	fused := trainingPlan(t, true)
	lowered, err := fused.ForVersion(1)
	if err != nil {
		t.Fatal(err)
	}
	run := func(p *plan.Plan, version int) *checkpoint.Checkpoint {
		r := NewRuntime("dev-1", version, nil, 7)
		_ = r.RegisterStore(filledStore(t))
		res, err := r.Execute(p, globalCkpt(t, p), t0)
		if err != nil {
			t.Fatal(err)
		}
		return res.Update
	}
	a := run(fused, 3)
	b := run(lowered, 1)
	if len(a.Params) != len(b.Params) {
		t.Fatal("dim mismatch")
	}
	for i := range a.Params {
		if a.Params[i] != b.Params[i] {
			t.Fatal("fused and lowered plans must produce identical updates")
		}
	}
}

func TestExecuteRejectsNewPlanOnOldRuntime(t *testing.T) {
	p := trainingPlan(t, true) // needs version 3
	r := NewRuntime("dev-old", 1, nil, 7)
	_ = r.RegisterStore(filledStore(t))
	res, err := r.Execute(p, globalCkpt(t, p), t0)
	if err == nil {
		t.Fatal("old runtime must reject fused plan")
	}
	if !strings.Contains(res.Session.Shape(), "*") {
		t.Fatalf("session should log error: %q", res.Session.Shape())
	}
}

func TestExecuteInterruptedOnEligibilityLoss(t *testing.T) {
	p := trainingPlan(t, false)
	elig := NewEligibility(Conditions{Idle: true, Charging: true, Unmetered: true})
	r := NewRuntime("dev-1", 3, elig, 7)
	_ = r.RegisterStore(filledStore(t))

	// Lose eligibility before execution: every op checks first.
	elig.Set(Conditions{})
	res, err := r.Execute(p, globalCkpt(t, p), t0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Fatal("must be interrupted")
	}
	if res.Session.Shape() != "-v!" {
		t.Fatalf("shape = %q", res.Session.Shape())
	}
}

func TestExecuteMissingStore(t *testing.T) {
	p := trainingPlan(t, false)
	r := NewRuntime("dev-1", 3, nil, 7)
	if _, err := r.Execute(p, globalCkpt(t, p), t0); err == nil {
		t.Fatal("missing store must fail")
	}
}

func TestExecuteEmptyStore(t *testing.T) {
	p := trainingPlan(t, false)
	r := NewRuntime("dev-1", 3, nil, 7)
	empty, _ := NewMemStore("clicks", 10, 0)
	_ = r.RegisterStore(empty)
	if _, err := r.Execute(p, globalCkpt(t, p), t0); err == nil {
		t.Fatal("empty store must fail")
	}
}

func TestExecuteBadCheckpoint(t *testing.T) {
	p := trainingPlan(t, false)
	r := NewRuntime("dev-1", 3, nil, 7)
	_ = r.RegisterStore(filledStore(t))
	bad := &checkpoint.Checkpoint{TaskName: p.ID, Params: tensor.Vector{1, 2, 3}}
	if _, err := r.Execute(p, bad, t0); err == nil {
		t.Fatal("dim-mismatched checkpoint must fail")
	}
}

func TestExecuteEvalPlan(t *testing.T) {
	cfg := plan.Config{
		TaskID:        "pop/eval",
		Population:    "pop",
		Type:          plan.TaskEval,
		Model:         nn.Spec{Kind: nn.KindLogistic, Features: 2, Classes: 2, Seed: 1},
		StoreName:     "clicks",
		TargetDevices: 10,
	}
	p, err := plan.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRuntime("dev-1", 3, nil, 7)
	_ = r.RegisterStore(filledStore(t))
	res, err := r.Execute(p, globalCkpt(t, p), t0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Update != nil {
		t.Fatal("eval plan must not produce an update")
	}
	if _, ok := res.Metrics["eval_accuracy"]; !ok {
		t.Fatalf("eval metrics missing: %+v", res.Metrics)
	}
}

func TestRegisterStoreDuplicate(t *testing.T) {
	r := NewRuntime("dev-1", 3, nil, 7)
	s, _ := NewMemStore("x", 10, 0)
	if err := r.RegisterStore(s); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterStore(s); err == nil {
		t.Fatal("duplicate store must fail")
	}
}

// TestExecuteClipsUpdateWhenPlanAsks: a plan carrying Device.ClipNorm (the
// norm_bound robust policy's client-side mirror) must bound the saved
// update's per-example-average L2 norm, and the clipped update must be the
// unclipped one scaled — same direction, bounded magnitude.
func TestExecuteClipsUpdateWhenPlanAsks(t *testing.T) {
	run := func(clip float64) *checkpoint.Checkpoint {
		p := trainingPlan(t, false)
		p.Device.ClipNorm = clip
		r := NewRuntime("dev-1", 3, nil, 7)
		if err := r.RegisterStore(filledStore(t)); err != nil {
			t.Fatal(err)
		}
		res, err := r.Execute(p, globalCkpt(t, p), t0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Update == nil {
			t.Fatal("no update")
		}
		return res.Update
	}
	free := run(0)
	freeNorm := free.Params.Norm2() / free.Weight
	if freeNorm <= 0 {
		t.Fatal("unclipped update has zero norm; clip test needs signal")
	}
	clip := freeNorm / 4
	clipped := run(clip)
	if clipped.Weight != free.Weight {
		t.Fatalf("clipping changed weight: %v vs %v", clipped.Weight, free.Weight)
	}
	gotNorm := clipped.Params.Norm2() / clipped.Weight
	if gotNorm > clip*(1+1e-12) {
		t.Fatalf("clipped norm %v exceeds bound %v", gotNorm, clip)
	}
	scale := clip / freeNorm
	for i := range free.Params {
		want := free.Params[i] * scale
		if diff := want - clipped.Params[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("param %d: clipped %v, want scaled %v", i, clipped.Params[i], want)
		}
	}
	// A generous bound leaves the update untouched.
	loose := run(freeNorm * 2)
	for i := range free.Params {
		if loose.Params[i] != free.Params[i] {
			t.Fatal("under-bound update must not be modified")
		}
	}
}
