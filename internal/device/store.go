// Package device implements the on-device software architecture of Sec. 3:
// the example store applications fill with training data, the eligibility
// conditions (idle, charging, unmetered network), the multi-tenant
// scheduler that runs one training session at a time, and the FL runtime
// that executes FL plans and reports updates.
package device

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/nn"
	"repro/internal/plan"
)

// ExampleStore is the API applications implement to expose local data to
// the FL runtime ("Applications are responsible for making their data
// available to the FL runtime as an example store by implementing an API we
// provide").
type ExampleStore interface {
	// Name identifies the store; plans reference it by name.
	Name() string
	// Select returns the examples matching the plan's selection criteria.
	Select(criteria plan.SelectionCriteria, now time.Time) []nn.Example
	// Count returns the number of stored examples.
	Count() int
}

// MemStore is the provided utility example store: bounded footprint and
// automatic expiration of old data ("We recommend that applications limit
// the total storage footprint... and automatically remove old data after a
// pre-designated expiration time. We provide utilities to make these tasks
// easy.").
type MemStore struct {
	mu         sync.Mutex
	name       string
	maxEntries int
	expiration time.Duration // 0 = never expire
	entries    []entry
}

type entry struct {
	ex nn.Example
	at time.Time
}

// NewMemStore creates a store holding at most maxEntries examples, dropping
// examples older than expiration (0 disables expiry).
func NewMemStore(name string, maxEntries int, expiration time.Duration) (*MemStore, error) {
	if name == "" {
		return nil, fmt.Errorf("device: store needs a name")
	}
	if maxEntries <= 0 {
		return nil, fmt.Errorf("device: maxEntries must be positive, got %d", maxEntries)
	}
	return &MemStore{name: name, maxEntries: maxEntries, expiration: expiration}, nil
}

// Name implements ExampleStore.
func (s *MemStore) Name() string { return s.name }

// Add appends an example collected at time now, evicting the oldest entry
// when the footprint cap is hit.
func (s *MemStore) Add(ex nn.Example, now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pruneLocked(now)
	if len(s.entries) >= s.maxEntries {
		s.entries = s.entries[1:]
	}
	s.entries = append(s.entries, entry{ex: ex, at: now})
}

// Count implements ExampleStore.
func (s *MemStore) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Select implements ExampleStore: newest-first up to MaxExamples, honoring
// both the plan's MaxAge and the store's own expiration.
func (s *MemStore) Select(criteria plan.SelectionCriteria, now time.Time) []nn.Example {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pruneLocked(now)
	var out []nn.Example
	for i := len(s.entries) - 1; i >= 0; i-- {
		e := s.entries[i]
		if criteria.MaxAge > 0 && now.Sub(e.at) > criteria.MaxAge {
			break // entries are time-ordered; older ones only get older
		}
		out = append(out, e.ex)
		if criteria.MaxExamples > 0 && len(out) >= criteria.MaxExamples {
			break
		}
	}
	return out
}

// pruneLocked removes expired entries. Callers hold s.mu.
func (s *MemStore) pruneLocked(now time.Time) {
	if s.expiration <= 0 {
		return
	}
	cut := 0
	for cut < len(s.entries) && now.Sub(s.entries[cut].at) > s.expiration {
		cut++
	}
	if cut > 0 {
		s.entries = append([]entry(nil), s.entries[cut:]...)
	}
}
