package device

import (
	"fmt"
	"time"

	"repro/internal/analytics"
	"repro/internal/checkpoint"
	"repro/internal/fedavg"
	"repro/internal/nn"
	"repro/internal/plan"
	"repro/internal/tensor"
)

// Runtime is the on-device FL runtime: it executes FL plans against the
// registered example stores, checking eligibility between steps and logging
// session state transitions (the event logs behind Table 1).
type Runtime struct {
	DeviceID string
	// Version is the FL runtime version; plans requiring a newer version
	// are rejected (Sec. 7.3).
	Version     int
	Eligibility *Eligibility
	stores      map[string]ExampleStore
	rng         *tensor.RNG
}

// NewRuntime creates a runtime for a device.
func NewRuntime(deviceID string, version int, elig *Eligibility, seed uint64) *Runtime {
	if elig == nil {
		elig = NewEligibility(Conditions{Idle: true, Charging: true, Unmetered: true})
	}
	return &Runtime{
		DeviceID:    deviceID,
		Version:     version,
		Eligibility: elig,
		stores:      make(map[string]ExampleStore),
		rng:         tensor.NewRNG(seed),
	}
}

// RegisterStore makes an application's example store available to plans.
func (r *Runtime) RegisterStore(s ExampleStore) error {
	if _, dup := r.stores[s.Name()]; dup {
		return fmt.Errorf("device: store %q already registered", s.Name())
	}
	r.stores[s.Name()] = s
	return nil
}

// Result is the outcome of executing a plan.
type Result struct {
	// Update is the weighted model delta for training plans (nil for eval).
	Update *checkpoint.Checkpoint
	// Metrics are the plan-computed metric values.
	Metrics map[string]float64
	// Session is the state-transition log of this execution.
	Session *analytics.Session
	// Interrupted is true when the run aborted on an eligibility change.
	Interrupted bool
}

// Execute runs the device portion of a plan against the global checkpoint.
// The session log always starts at StateDownloadedPlan (check-in was logged
// by the caller when the connection opened). On eligibility lapse it
// returns a Result with Interrupted set rather than an error: interruption
// is a normal outcome (2% of sessions in Table 1), not a bug.
func (r *Runtime) Execute(p *plan.Plan, global *checkpoint.Checkpoint, now time.Time) (*Result, error) {
	session := &analytics.Session{}
	session.Log(analytics.StateCheckin)
	session.Log(analytics.StateDownloadedPlan)
	res := &Result{Session: session, Metrics: make(map[string]float64)}

	if p.Device.MinRuntimeVersion > r.Version {
		session.Log(analytics.StateError)
		return res, fmt.Errorf("device: plan %q needs runtime ≥ %d, have %d",
			p.ID, p.Device.MinRuntimeVersion, r.Version)
	}

	var model nn.Model
	var globalParams tensor.Vector
	var examples []nn.Example
	var update *fedavg.Update

	for _, op := range p.Device.Ops {
		if !r.Eligibility.OK() {
			session.Log(analytics.StateInterrupted)
			res.Interrupted = true
			return res, nil
		}
		switch op {
		case plan.OpLoadCheckpoint:
			m, err := p.Device.Model.Build()
			if err != nil {
				session.Log(analytics.StateError)
				return res, fmt.Errorf("device: build model: %w", err)
			}
			if len(global.Params) != m.NumParams() {
				session.Log(analytics.StateError)
				return res, fmt.Errorf("device: checkpoint has %d params, model wants %d",
					len(global.Params), m.NumParams())
			}
			m.WriteParams(global.Params)
			model = m
			globalParams = global.Params.Clone()

		case plan.OpSelectExamples:
			store, ok := r.stores[p.Device.Selection.StoreName]
			if !ok {
				session.Log(analytics.StateError)
				return res, fmt.Errorf("device: no example store %q", p.Device.Selection.StoreName)
			}
			examples = store.Select(p.Device.Selection, now)
			if len(examples) == 0 {
				session.Log(analytics.StateError)
				return res, fmt.Errorf("device: store %q returned no examples", store.Name())
			}

		case plan.OpTrain, plan.OpFusedTrainMetrics:
			if model == nil || examples == nil {
				session.Log(analytics.StateError)
				return res, fmt.Errorf("device: %v before load/select", op)
			}
			session.Log(analytics.StateTrainStarted)
			u, err := fedavg.ClientUpdate(model, globalParams, examples, fedavg.ClientConfig{
				BatchSize: p.Device.BatchSize,
				Epochs:    p.Device.Epochs,
				LR:        p.Device.LearningRate,
				Shuffle:   true,
			}, r.rng)
			if err != nil {
				session.Log(analytics.StateError)
				return res, fmt.Errorf("device: train: %w", err)
			}
			update = u
			session.Log(analytics.StateTrainCompleted)
			if op == plan.OpFusedTrainMetrics {
				res.Metrics["train_loss"] = u.TrainLoss
				res.Metrics["num_examples"] = u.Weight
			}

		case plan.OpEval:
			if model == nil || examples == nil {
				session.Log(analytics.StateError)
				return res, fmt.Errorf("device: eval before load/select")
			}
			met := model.Evaluate(examples)
			res.Metrics["eval_loss"] = met.Loss
			res.Metrics["eval_accuracy"] = met.Accuracy
			res.Metrics["num_examples"] = float64(met.Count)

		case plan.OpComputeMetrics:
			if update != nil {
				res.Metrics["train_loss"] = update.TrainLoss
				res.Metrics["num_examples"] = update.Weight
			}

		case plan.OpSaveUpdate:
			if update == nil {
				session.Log(analytics.StateError)
				return res, fmt.Errorf("device: save_update before train")
			}
			if p.Device.ClipNorm > 0 {
				// Client-side norm bounding (the plan mirrors the server's
				// norm_bound policy): clipping before the update leaves the
				// device is what lets the policy compose with secure
				// aggregation, where the server never sees this vector.
				fedavg.ClipUpdate(update, p.Device.ClipNorm)
			}
			res.Update = &checkpoint.Checkpoint{
				TaskName: p.ID,
				Round:    global.Round,
				Weight:   update.Weight,
				Params:   update.Delta,
			}

		default:
			session.Log(analytics.StateError)
			return res, fmt.Errorf("device: unknown op %v", op)
		}
	}
	return res, nil
}
