package device

import (
	"fmt"
	"sync"
)

// Scheduler is the multi-tenant on-device scheduler (Sec. 3 Multi-Tenancy,
// Sec. 11 Device Scheduling): multiple FL populations registered in the
// same app share one worker queue, and training sessions never run in
// parallel "because of their high resource consumption".
type Scheduler struct {
	mu      sync.Mutex
	queue   []*Job
	running bool
	history []string // population names in execution order, for tests/analytics
}

// Job is one queued training session.
type Job struct {
	Population string
	Run        func()
}

// NewScheduler returns an empty scheduler.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Enqueue appends a session to the worker queue.
func (s *Scheduler) Enqueue(j *Job) error {
	if j == nil || j.Run == nil {
		return fmt.Errorf("device: nil job")
	}
	s.mu.Lock()
	s.queue = append(s.queue, j)
	s.mu.Unlock()
	return nil
}

// Pending returns the queue length.
func (s *Scheduler) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// RunNext executes the next queued session, if any, and reports whether one
// ran. It refuses to overlap sessions.
func (s *Scheduler) RunNext() (bool, error) {
	s.mu.Lock()
	if s.running {
		s.mu.Unlock()
		return false, fmt.Errorf("device: a training session is already running")
	}
	if len(s.queue) == 0 {
		s.mu.Unlock()
		return false, nil
	}
	j := s.queue[0]
	s.queue = s.queue[1:]
	s.running = true
	s.history = append(s.history, j.Population)
	s.mu.Unlock()

	defer func() {
		s.mu.Lock()
		s.running = false
		s.mu.Unlock()
	}()
	j.Run()
	return true, nil
}

// DrainAll runs queued sessions until the queue is empty.
func (s *Scheduler) DrainAll() (int, error) {
	n := 0
	for {
		ran, err := s.RunNext()
		if err != nil {
			return n, err
		}
		if !ran {
			return n, nil
		}
		n++
	}
}

// History returns the populations executed, in order.
func (s *Scheduler) History() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.history...)
}
