// Package field implements arithmetic in the prime field GF(p) with
// p = 2^61 − 1 (a Mersenne prime), plus Shamir secret sharing over it.
// Secure Aggregation (Bonawitz et al. 2017) masks model updates with
// pairwise pads in this field; Mersenne reduction keeps Mul cheap enough
// that the quadratic server cost of the protocol is dominated by protocol
// work rather than bignum overhead, as in the paper.
package field

import "math/bits"

// P is the field modulus 2^61 − 1.
const P uint64 = (1 << 61) - 1

// Reduce maps an arbitrary uint64 into [0, P).
func Reduce(x uint64) uint64 {
	x = (x & P) + (x >> 61)
	if x >= P {
		x -= P
	}
	return x
}

// Add returns a + b mod P. Inputs must already be reduced.
func Add(a, b uint64) uint64 {
	s := a + b // a, b < 2^61, no overflow
	if s >= P {
		s -= P
	}
	return s
}

// Sub returns a − b mod P. Inputs must already be reduced.
func Sub(a, b uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + P - b
}

// Neg returns −a mod P.
func Neg(a uint64) uint64 {
	if a == 0 {
		return 0
	}
	return P - a
}

// Mul returns a · b mod P using Mersenne reduction of the 128-bit product.
func Mul(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// a·b = hi·2^64 + lo; 2^61 ≡ 1 (mod P) so 2^64 ≡ 8 (mod P).
	// hi < 2^58 (since a,b < 2^61), so hi·8 < 2^61 — no overflow below.
	r := Reduce(lo) + Reduce(hi<<3)
	if r >= P {
		r -= P
	}
	return r
}

// Pow returns a^e mod P by square-and-multiply.
func Pow(a, e uint64) uint64 {
	result := uint64(1)
	base := Reduce(a)
	for e > 0 {
		if e&1 == 1 {
			result = Mul(result, base)
		}
		base = Mul(base, base)
		e >>= 1
	}
	return result
}

// Inv returns the multiplicative inverse of a (a ≠ 0) via Fermat's little
// theorem: a^(P−2) mod P.
func Inv(a uint64) uint64 {
	if Reduce(a) == 0 {
		panic("field: inverse of zero")
	}
	return Pow(a, P-2)
}

// AddVec computes dst[i] = a[i] + b[i] mod P.
func AddVec(dst, a, b []uint64) {
	for i := range dst {
		dst[i] = Add(a[i], b[i])
	}
}

// SubVec computes dst[i] = a[i] − b[i] mod P.
func SubVec(dst, a, b []uint64) {
	for i := range dst {
		dst[i] = Sub(a[i], b[i])
	}
}
