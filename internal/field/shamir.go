package field

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
)

// Share is one Shamir share: the polynomial evaluated at X.
type Share struct {
	X uint64 // evaluation point, 1-based participant index
	Y uint64
}

// randFieldElem draws a uniform element of GF(P) via rejection sampling.
func randFieldElem(rng io.Reader) (uint64, error) {
	var buf [8]byte
	for {
		if _, err := io.ReadFull(rng, buf[:]); err != nil {
			return 0, fmt.Errorf("field: rand: %w", err)
		}
		v := binary.BigEndian.Uint64(buf[:]) >> 3 // 61 bits
		if v < P {
			return v, nil
		}
	}
}

// Split shares secret into n shares such that any t of them reconstruct it
// and fewer than t reveal nothing. rng may be nil to use crypto/rand.
func Split(secret uint64, n, t int, rng io.Reader) ([]Share, error) {
	if t < 1 || n < t {
		return nil, fmt.Errorf("field: invalid sharing parameters n=%d t=%d", n, t)
	}
	if rng == nil {
		rng = rand.Reader
	}
	secret = Reduce(secret)
	// Random degree-(t−1) polynomial with constant term = secret.
	coeffs := make([]uint64, t)
	coeffs[0] = secret
	for i := 1; i < t; i++ {
		c, err := randFieldElem(rng)
		if err != nil {
			return nil, err
		}
		coeffs[i] = c
	}
	shares := make([]Share, n)
	for i := 1; i <= n; i++ {
		x := uint64(i)
		// Horner evaluation.
		y := uint64(0)
		for j := t - 1; j >= 0; j-- {
			y = Add(Mul(y, x), coeffs[j])
		}
		shares[i-1] = Share{X: x, Y: y}
	}
	return shares, nil
}

// Reconstruct recovers the secret from at least t distinct shares via
// Lagrange interpolation at zero.
func Reconstruct(shares []Share, t int) (uint64, error) {
	if len(shares) < t {
		return 0, fmt.Errorf("field: need %d shares, have %d", t, len(shares))
	}
	use := shares[:t]
	seen := make(map[uint64]bool, t)
	for _, s := range use {
		if s.X == 0 || seen[s.X] {
			return 0, fmt.Errorf("field: invalid or duplicate share x=%d", s.X)
		}
		seen[s.X] = true
	}
	var secret uint64
	for i, si := range use {
		num, den := uint64(1), uint64(1)
		for j, sj := range use {
			if i == j {
				continue
			}
			num = Mul(num, Neg(sj.X))       // (0 − x_j)
			den = Mul(den, Sub(si.X, sj.X)) // (x_i − x_j)
		}
		li := Mul(num, Inv(den))
		secret = Add(secret, Mul(si.Y, li))
	}
	return secret, nil
}
