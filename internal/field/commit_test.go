package field

import (
	"bytes"
	"testing"
)

func TestCommitShareRoundTrip(t *testing.T) {
	blinder, err := NewBlinder(nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := []byte("owner-7/b")
	ys := []uint64{1, P - 1, 0, 123456789}
	c := CommitShare(ctx, 3, ys, blinder)
	if !VerifyShare(ctx, 3, ys, blinder, c[:]) {
		t.Fatal("honest share must verify")
	}
}

func TestCommitShareDetectsTampering(t *testing.T) {
	blinder, _ := NewBlinder(nil)
	ctx := []byte("owner-7/b")
	ys := []uint64{10, 20, 30}
	c := CommitShare(ctx, 5, ys, blinder)

	cases := []struct {
		name string
		ok   bool
		f    func() bool
	}{
		{"perturbed y", false, func() bool {
			bad := []uint64{10, 20, 31}
			return VerifyShare(ctx, 5, bad, blinder, c[:])
		}},
		{"perturbed x", false, func() bool {
			return VerifyShare(ctx, 6, ys, blinder, c[:])
		}},
		{"wrong context", false, func() bool {
			return VerifyShare([]byte("owner-7/sk"), 5, ys, blinder, c[:])
		}},
		{"wrong blinder", false, func() bool {
			other, _ := NewBlinder(nil)
			return VerifyShare(ctx, 5, ys, other, c[:])
		}},
		{"truncated commitment", false, func() bool {
			return VerifyShare(ctx, 5, ys, blinder, c[:CommitmentLen-1])
		}},
		{"fewer chunks", false, func() bool {
			return VerifyShare(ctx, 5, ys[:2], blinder, c[:])
		}},
	}
	for _, tc := range cases {
		if got := tc.f(); got != tc.ok {
			t.Errorf("%s: verify = %v, want %v", tc.name, got, tc.ok)
		}
	}
}

// TestCommitShareContextLengthFraming pins the length-prefixed framing:
// moving a byte between context and the first y must change the digest
// (no ambiguous concatenation).
func TestCommitShareContextLengthFraming(t *testing.T) {
	blinder := make([]byte, BlinderLen)
	a := CommitShare([]byte{1, 0, 0, 0, 0, 0, 0, 0, 2}, 9, []uint64{3}, blinder)
	b := CommitShare([]byte{1}, 9, []uint64{2 << 56, 3}[0:1], blinder)
	if bytes.Equal(a[:], b[:]) {
		t.Fatal("distinct (context, ys) framings must not collide")
	}
}

func TestCommitShareIsHiding(t *testing.T) {
	// Same share, two blinders: distinct commitments — the broadcast leaks
	// nothing an exhaustive 48-bit chunk search could confirm without the
	// blinder.
	ys := []uint64{42}
	b1, _ := NewBlinder(nil)
	b2, _ := NewBlinder(nil)
	c1 := CommitShare(nil, 1, ys, b1)
	c2 := CommitShare(nil, 1, ys, b2)
	if bytes.Equal(c1[:], c2[:]) {
		t.Fatal("commitments must depend on the blinder")
	}
}
