package field

import (
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"fmt"
	"io"
)

// Share commitments give Shamir sharing the verifiability of Feldman VSS
// without its exponent leak: the dealer publishes one commitment per
// evaluation point, each holder checks the share it received against the
// dealer's broadcast, and a reconstructing party checks every revealed
// share before interpolating — so a forged or corrupted share is
// attributed to a specific device instead of silently poisoning the
// reconstructed secret.
//
// Classic Feldman commits to the polynomial coefficients in a prime-order
// group (A_j = a_j·G) and holders verify f(i)·G == Σ A_j·i^j. That shape
// is unsound for the 48-bit chunked secrets shared here: the committed
// constant term a_0·G would expose each chunk to a 2^24 baby-step/giant-
// step discrete log, handing an honest-but-curious server every device's
// personal mask seed — precisely what Secure Aggregation exists to hide.
// (It is also incoherent across moduli: the shares live in GF(2^61−1)
// while group scalars are reduced mod the curve order, so the exponent
// equation does not even hold for reduced chunk values.)
//
// Instead each evaluation is committed with a hiding, binding hash
// commitment: C_i = SHA-256(tag ‖ context ‖ x_i ‖ y_i… ‖ blinder_i). The
// 16-byte random blinder makes the commitment reveal nothing about the
// share; collision resistance binds the dealer to one value per point.
// What this gives up relative to Feldman is only the low-degree
// consistency check — a dealer can still commit to points that lie on no
// degree-(t−1) polynomial — but a dealer inconsistent with its own
// sharing corrupts only the reconstruction of its own secret, which is
// harm-equivalent to submitting a garbage input and is caught (and
// blamed) by the same per-share checks at reconstruction time.

// BlinderLen is the length of a commitment blinder in bytes.
const BlinderLen = 16

// CommitmentLen is the length of a share commitment in bytes.
const CommitmentLen = sha256.Size

// commitTag domain-separates share commitments from every other SHA-256
// use in the codebase.
var commitTag = []byte("fieldvss1")

// NewBlinder draws a fresh commitment blinder. rng may be nil to use
// crypto/rand.
func NewBlinder(rng io.Reader) ([]byte, error) {
	if rng == nil {
		rng = rand.Reader
	}
	b := make([]byte, BlinderLen)
	if _, err := io.ReadFull(rng, b); err != nil {
		return nil, fmt.Errorf("field: blinder: %w", err)
	}
	return b, nil
}

// CommitShare commits to one evaluation point of a (possibly chunked)
// Shamir sharing: the x coordinate and the y values of every chunk shared
// at that point. context carries the caller's domain separation (dealer
// identity, share kind, protocol instance) so commitments cannot be
// replayed across roles.
func CommitShare(context []byte, x uint64, ys []uint64, blinder []byte) [CommitmentLen]byte {
	h := sha256.New()
	h.Write(commitTag)
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(len(context)))
	h.Write(n[:])
	h.Write(context)
	binary.BigEndian.PutUint64(n[:], x)
	h.Write(n[:])
	binary.BigEndian.PutUint64(n[:], uint64(len(ys)))
	h.Write(n[:])
	for _, y := range ys {
		binary.BigEndian.PutUint64(n[:], y)
		h.Write(n[:])
	}
	h.Write(blinder)
	var out [CommitmentLen]byte
	h.Sum(out[:0])
	return out
}

// VerifyShare reports whether (x, ys, blinder) matches the commitment c.
func VerifyShare(context []byte, x uint64, ys []uint64, blinder []byte, c []byte) bool {
	if len(c) != CommitmentLen {
		return false
	}
	want := CommitShare(context, x, ys, blinder)
	return subtle.ConstantTimeCompare(want[:], c) == 1
}
