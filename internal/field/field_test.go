package field

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestReduce(t *testing.T) {
	cases := []struct{ in, want uint64 }{
		{0, 0},
		{P, 0},
		{P + 1, 1},
		{P - 1, P - 1},
		{^uint64(0), Reduce(^uint64(0))},
	}
	for _, c := range cases {
		if got := Reduce(c.in); got != c.want {
			t.Errorf("Reduce(%d) = %d, want %d", c.in, got, c.want)
		}
		if got := Reduce(c.in); got >= P {
			t.Errorf("Reduce(%d) = %d not in field", c.in, got)
		}
	}
}

func TestAddSubInverse(t *testing.T) {
	rng := tensor.NewRNG(1)
	for i := 0; i < 1000; i++ {
		a := Reduce(rng.Uint64())
		b := Reduce(rng.Uint64())
		if Sub(Add(a, b), b) != a {
			t.Fatalf("(a+b)-b != a for a=%d b=%d", a, b)
		}
		if Add(a, Neg(a)) != 0 {
			t.Fatalf("a + (−a) != 0 for a=%d", a)
		}
	}
}

func TestMulSmall(t *testing.T) {
	if Mul(3, 4) != 12 {
		t.Fatal("3·4 != 12")
	}
	if Mul(P-1, P-1) != 1 { // (−1)² = 1
		t.Fatalf("(P−1)² = %d, want 1", Mul(P-1, P-1))
	}
	if Mul(0, 123) != 0 {
		t.Fatal("0·x != 0")
	}
}

func TestMulMatchesBigIntSemantics(t *testing.T) {
	// Cross-check with the identity (a·b) mod P computed via repeated
	// addition for small operands and via known algebra for large ones.
	rng := tensor.NewRNG(2)
	for i := 0; i < 200; i++ {
		a := Reduce(rng.Uint64())
		// Distributivity: a·(b+c) == a·b + a·c.
		b := Reduce(rng.Uint64())
		c := Reduce(rng.Uint64())
		left := Mul(a, Add(b, c))
		right := Add(Mul(a, b), Mul(a, c))
		if left != right {
			t.Fatalf("distributivity failed: a=%d b=%d c=%d", a, b, c)
		}
	}
}

func TestPowInv(t *testing.T) {
	rng := tensor.NewRNG(3)
	for i := 0; i < 100; i++ {
		a := Reduce(rng.Uint64())
		if a == 0 {
			continue
		}
		if Mul(a, Inv(a)) != 1 {
			t.Fatalf("a·a⁻¹ != 1 for a=%d", a)
		}
	}
	if Pow(2, 61) != Add(1, 1) { // 2^61 = 2·2^60; 2^61 mod P = 2^61 − P·1 + ... = 2^61-(2^61-1)=1? No: 2^61 mod (2^61−1) = 1.
		// 2^61 ≡ 1 (mod P)
		if Pow(2, 61) != 1 {
			t.Fatalf("2^61 mod P = %d, want 1", Pow(2, 61))
		}
	}
	if Pow(5, 0) != 1 {
		t.Fatal("a^0 != 1")
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) must panic")
		}
	}()
	Inv(0)
}

func TestVecOps(t *testing.T) {
	a := []uint64{1, 2, P - 1}
	b := []uint64{5, P - 1, 1}
	dst := make([]uint64, 3)
	AddVec(dst, a, b)
	if dst[0] != 6 || dst[1] != 1 || dst[2] != 0 {
		t.Fatalf("AddVec = %v", dst)
	}
	SubVec(dst, dst, b)
	for i := range a {
		if dst[i] != a[i] {
			t.Fatalf("SubVec did not invert AddVec: %v vs %v", dst, a)
		}
	}
}

func TestShamirRoundTrip(t *testing.T) {
	secret := uint64(123456789)
	shares, err := Split(secret, 5, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(shares) != 5 {
		t.Fatalf("got %d shares", len(shares))
	}
	got, err := Reconstruct(shares[:3], 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != secret {
		t.Fatalf("reconstructed %d, want %d", got, secret)
	}
	// Any subset of size t works.
	got2, err := Reconstruct([]Share{shares[4], shares[1], shares[3]}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got2 != secret {
		t.Fatalf("subset reconstruction %d, want %d", got2, secret)
	}
}

func TestShamirInsufficientShares(t *testing.T) {
	shares, _ := Split(42, 5, 3, nil)
	if _, err := Reconstruct(shares[:2], 3); err == nil {
		t.Fatal("2 of 3 shares must not reconstruct")
	}
}

func TestShamirDuplicateShares(t *testing.T) {
	shares, _ := Split(42, 5, 3, nil)
	if _, err := Reconstruct([]Share{shares[0], shares[0], shares[1]}, 3); err == nil {
		t.Fatal("duplicate shares must be rejected")
	}
}

func TestShamirBadParams(t *testing.T) {
	if _, err := Split(1, 2, 3, nil); err == nil {
		t.Fatal("n < t must fail")
	}
	if _, err := Split(1, 3, 0, nil); err == nil {
		t.Fatal("t < 1 must fail")
	}
}

func TestShamirTEquals1(t *testing.T) {
	shares, err := Split(77, 3, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// With t=1 every share IS the secret.
	for _, s := range shares {
		if s.Y != 77 {
			t.Fatalf("t=1 share %v should equal secret", s)
		}
	}
}

func TestShamirDeterministicWithSeededRNG(t *testing.T) {
	seed := bytes.Repeat([]byte{7}, 1024)
	s1, err := Split(99, 4, 2, bytes.NewReader(seed))
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := Split(99, 4, 2, bytes.NewReader(seed))
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("same randomness must give same shares")
		}
	}
}

// Property: Shamir shares of x and y added pointwise reconstruct x+y
// (the linearity Secure Aggregation depends on).
func TestShamirLinearity(t *testing.T) {
	f := func(x, y uint64) bool {
		x, y = Reduce(x), Reduce(y)
		sx, err1 := Split(x, 4, 3, nil)
		sy, err2 := Split(y, 4, 3, nil)
		if err1 != nil || err2 != nil {
			return false
		}
		sum := make([]Share, 4)
		for i := range sum {
			sum[i] = Share{X: sx[i].X, Y: Add(sx[i].Y, sy[i].Y)}
		}
		got, err := Reconstruct(sum[:3], 3)
		return err == nil && got == Add(x, y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: field axioms hold for random elements.
func TestFieldAxioms(t *testing.T) {
	f := func(ra, rb, rc uint64) bool {
		a, b, c := Reduce(ra), Reduce(rb), Reduce(rc)
		// Associativity and commutativity of Add/Mul.
		if Add(Add(a, b), c) != Add(a, Add(b, c)) {
			return false
		}
		if Mul(Mul(a, b), c) != Mul(a, Mul(b, c)) {
			return false
		}
		if Add(a, b) != Add(b, a) || Mul(a, b) != Mul(b, a) {
			return false
		}
		// Identity elements.
		return Add(a, 0) == a && Mul(a, 1) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
