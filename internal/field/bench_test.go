package field

import (
	"testing"

	"repro/internal/tensor"
)

func BenchmarkMul(b *testing.B) {
	rng := tensor.NewRNG(1)
	x, y := Reduce(rng.Uint64()), Reduce(rng.Uint64())
	for i := 0; i < b.N; i++ {
		x = Mul(x, y)
	}
	_ = x
}

func BenchmarkInv(b *testing.B) {
	rng := tensor.NewRNG(2)
	x := Reduce(rng.Uint64()) | 1
	for i := 0; i < b.N; i++ {
		_ = Inv(x)
	}
}

func BenchmarkAddVec(b *testing.B) {
	rng := tensor.NewRNG(3)
	n := 4096
	x := make([]uint64, n)
	y := make([]uint64, n)
	for i := range x {
		x[i] = Reduce(rng.Uint64())
		y[i] = Reduce(rng.Uint64())
	}
	b.SetBytes(int64(8 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AddVec(x, x, y)
	}
}

func BenchmarkShamirSplit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Split(123456, 10, 6, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShamirReconstruct(b *testing.B) {
	shares, err := Split(123456, 10, 6, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Reconstruct(shares[:6], 6); err != nil {
			b.Fatal(err)
		}
	}
}
