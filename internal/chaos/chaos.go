// Package chaos is the deterministic fault-injection layer for the sharded
// FL deployment: it wraps transport.Conn / transport.Listener link surfaces
// with composable, seeded fault schedules — per-link-role drop, delay,
// jitter, duplication, corruption, bandwidth caps, connection resets, and
// partition windows addressable by wall-clock offset or round number.
//
// Every stochastic decision on a link is a pure function of (scenario seed,
// link role, link ordinal within the role, message index), so a scenario
// replays the same fault schedule from one seed. The package is entirely
// opt-in at construction: production code never imports it, a nil *Injector
// wraps nothing, and the wrapped interfaces add zero cost to un-wrapped
// connections.
//
// chaos.Verify (verify.go) is the other half: an invariant checker run
// after every scenario, asserting checkpoint-lineage monotonicity, conn and
// goroutine accounting, selector quota conservation, aggregate-sum
// correctness, and /metrics counter monotonicity.
package chaos

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/transport"
)

// Role labels a class of links (and, with a ":suffix", one specific link
// group). Rules and windows match by exact role or by "class:" prefix, so a
// rule for RoleShard applies to "shard", "shard:0", "shard:1", ...
type Role string

// The link roles of the sharded deployment. Drivers may suffix them
// (e.g. "shard:2") to address one shard's links.
const (
	// RoleDevice is a device↔selector link.
	RoleDevice Role = "device"
	// RoleShard is a shard↔coordinator link (lock RPCs ride it too).
	RoleShard Role = "shard"
)

// matchRole reports whether a rule/window role selects a link role:
// empty matches everything, exact matches, and a bare class matches any
// "class:suffix" link.
func matchRole(rule, link Role) bool {
	if rule == "" || rule == link {
		return true
	}
	return strings.HasPrefix(string(link), string(rule)+":")
}

// Rule is one fault profile applied to every link whose role matches.
// Later matching rules override a field when they set it (non-zero).
type Rule struct {
	Role Role
	// Drop / Dup / Corrupt are per-message probabilities in [0,1).
	Drop    float64
	Dup     float64
	Corrupt float64
	// Delay defers every message; Jitter adds a uniform [0,Jitter) extra.
	Delay  time.Duration
	Jitter time.Duration
	// Rate caps the link at bytes/second (0 = unlimited). Deliveries are
	// deferred so cumulative bytes never exceed the cap.
	Rate int64
	// Queue bounds the deferred-delivery queue (default 256); an overflow
	// drops the message and records FaultQueueFull.
	Queue int
}

// delayed reports whether the rule needs the deferred-delivery path.
func (r Rule) delayed() bool { return r.Delay > 0 || r.Jitter > 0 || r.Rate > 0 }

// Window is one partition window: while active, sends on matching links are
// black-holed and inbound messages discarded (a bidirectional blackhole,
// like a mid-network partition — the endpoints learn only through silence).
// A window is addressed by wall offset from the injector's start, or — when
// Round > 0 — opens when AdvanceRound reaches that round.
type Window struct {
	Role  Role
	At    time.Duration
	Round int64
	Dur   time.Duration
}

// Reset schedules one connection teardown: the first send on a matching
// link at or after the trigger fails and the connection closes, as a
// mid-stream RST would. Each reset fires at most once across the whole
// scenario — the redialed replacement link is healthy.
type Reset struct {
	Role  Role
	At    time.Duration
	Round int64
}

// Spec is a composable fault schedule.
type Spec struct {
	Rules      []Rule
	Partitions []Window
	Resets     []Reset
}

// effective folds every rule matching role into one profile.
func (s Spec) effective(role Role) Rule {
	var out Rule
	out.Role = role
	for _, r := range s.Rules {
		if !matchRole(r.Role, role) {
			continue
		}
		if r.Drop > 0 {
			out.Drop = r.Drop
		}
		if r.Dup > 0 {
			out.Dup = r.Dup
		}
		if r.Corrupt > 0 {
			out.Corrupt = r.Corrupt
		}
		if r.Delay > 0 {
			out.Delay = r.Delay
		}
		if r.Jitter > 0 {
			out.Jitter = r.Jitter
		}
		if r.Rate > 0 {
			out.Rate = r.Rate
		}
		if r.Queue > 0 {
			out.Queue = r.Queue
		}
	}
	if out.Queue <= 0 {
		out.Queue = 256
	}
	return out
}

// windowState resolves a Window's activation: wall windows are anchored to
// the injector start; round windows open when their round arrives.
type windowState struct {
	w      Window
	opened atomic.Int64 // unix nanos; 0 = not yet open (round windows)
}

// Injector owns one scenario's fault state: the seed, the schedule, the
// trace, per-role link ordinals, and conn accounting. Wrap the listener or
// dialer of every link surface under test; a nil *Injector wraps nothing
// (every method is nil-safe), so "chaos off" is the zero value everywhere.
type Injector struct {
	seed  uint64
	spec  Spec
	start time.Time
	trace *Trace

	mu         sync.Mutex
	ordinals   map[Role]int
	windows    []*windowState
	resets     []Reset
	resetFired []bool
	live       map[*faultConn]struct{}

	round atomic.Int64

	opened  atomic.Int64
	closed  atomic.Int64
	senders atomic.Int64
}

// New builds an injector for one scenario. The wall clock for offset-
// addressed windows and resets starts now.
func New(seed uint64, spec Spec) *Injector {
	in := &Injector{
		seed:     seed,
		spec:     spec,
		start:    time.Now(),
		trace:    newTrace(),
		ordinals:   make(map[Role]int),
		resets:     spec.Resets,
		resetFired: make([]bool, len(spec.Resets)),
		live:       make(map[*faultConn]struct{}),
	}
	for i := range spec.Partitions {
		ws := &windowState{w: spec.Partitions[i]}
		if ws.w.Round <= 0 {
			ws.opened.Store(in.start.Add(ws.w.At).UnixNano())
		}
		in.windows = append(in.windows, ws)
	}
	return in
}

// Seed returns the scenario seed (printed by drivers for reproduction).
func (in *Injector) Seed() uint64 {
	if in == nil {
		return 0
	}
	return in.seed
}

// Trace exposes the recorded fault trace.
func (in *Injector) Trace() *Trace {
	if in == nil {
		return newTrace()
	}
	return in.trace
}

// OpenConns is the number of wrapped connections not yet closed — the conn
// accounting chaos.Verify checks after teardown.
func (in *Injector) OpenConns() int64 {
	if in == nil {
		return 0
	}
	return in.opened.Load() - in.closed.Load()
}

// SenderGoroutines is the number of live deferred-delivery goroutines.
func (in *Injector) SenderGoroutines() int64 {
	if in == nil {
		return 0
	}
	return in.senders.Load()
}

// AdvanceRound opens every round-addressed window and reset whose round has
// arrived. Drivers call it as the coordinator commits rounds.
func (in *Injector) AdvanceRound(round int64) {
	if in == nil {
		return
	}
	for {
		cur := in.round.Load()
		if round <= cur {
			return
		}
		if in.round.CompareAndSwap(cur, round) {
			break
		}
	}
	now := time.Now().UnixNano()
	for _, ws := range in.windows {
		if ws.w.Round > 0 && ws.w.Round <= round {
			ws.opened.CompareAndSwap(0, now)
		}
	}
}

// PartitionNow scripts an immediate partition of every matching link for
// dur — the "sever this link mid-round" lever for scenario drivers.
func (in *Injector) PartitionNow(role Role, dur time.Duration) {
	if in == nil {
		return
	}
	ws := &windowState{w: Window{Role: role, Dur: dur}}
	ws.opened.Store(time.Now().UnixNano())
	in.mu.Lock()
	in.windows = append(in.windows, ws)
	in.mu.Unlock()
}

// ResetNow tears down every live matching connection immediately.
func (in *Injector) ResetNow(role Role) {
	if in == nil {
		return
	}
	in.mu.Lock()
	var victims []*faultConn
	for c := range in.live {
		if matchRole(role, c.role) {
			victims = append(victims, c)
		}
	}
	in.mu.Unlock()
	for _, c := range victims {
		c.recordNow(FaultReset, "scripted")
		_ = c.Close()
	}
}

// partitioned reports whether any window covering role is active at t.
func (in *Injector) partitioned(role Role, t time.Time) bool {
	in.mu.Lock()
	windows := in.windows
	in.mu.Unlock()
	for _, ws := range windows {
		if !matchRole(ws.w.Role, role) {
			continue
		}
		opened := ws.opened.Load()
		if opened == 0 {
			continue
		}
		at := time.Unix(0, opened)
		if !t.Before(at) && t.Before(at.Add(ws.w.Dur)) {
			return true
		}
	}
	return false
}

// claimReset returns the index of a scheduled reset due for role at t and
// marks it fired, or -1. The check-and-claim is atomic so exactly one send,
// on one connection, fires each reset.
func (in *Injector) claimReset(role Role, t time.Time) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, r := range in.resets {
		if in.resetFired[i] || !matchRole(r.Role, role) {
			continue
		}
		if r.Round > 0 {
			if in.round.Load() >= r.Round {
				in.resetFired[i] = true
				return i
			}
			continue
		}
		if !t.Before(in.start.Add(r.At)) {
			in.resetFired[i] = true
			return i
		}
	}
	return -1
}

// linkSeed derives one link's RNG seed from (scenario seed, role, ordinal)
// via FNV-1a + splitmix64 — stable across runs and platforms.
func linkSeed(seed uint64, role Role, ordinal int) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(role))
	x := seed ^ h.Sum64() ^ (uint64(ordinal) * 0x9e3779b97f4a7c15)
	// splitmix64 finalizer.
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// WrapConn wraps one established connection in the role's fault profile.
// Nil injector (or a profile with no faults and no schedule entries at all)
// returns conn unchanged.
func (in *Injector) WrapConn(role Role, conn transport.Conn) transport.Conn {
	if in == nil {
		return conn
	}
	in.mu.Lock()
	ord := in.ordinals[role]
	in.ordinals[role] = ord + 1
	in.mu.Unlock()
	c := newFaultConn(in, role, ord, conn, in.spec.effective(role))
	in.opened.Add(1)
	in.mu.Lock()
	in.live[c] = struct{}{}
	in.mu.Unlock()
	return c
}

// WrapListener wraps every accepted connection in the role's fault profile.
func (in *Injector) WrapListener(role Role, l transport.Listener) transport.Listener {
	if in == nil {
		return l
	}
	return &faultListener{in: in, role: role, inner: l}
}

// WrapDialer wraps every dialed connection in the role's fault profile.
func (in *Injector) WrapDialer(role Role, dial func() (transport.Conn, error)) func() (transport.Conn, error) {
	if in == nil {
		return dial
	}
	return func() (transport.Conn, error) {
		conn, err := dial()
		if err != nil {
			return nil, err
		}
		return in.WrapConn(role, conn), nil
	}
}

// Plan renders the deterministic fault plan — seed, rules, windows, resets
// — the schedule two runs with the same seed share exactly. Drivers log it
// so a failing scenario can be reproduced from its seed alone.
func (in *Injector) Plan() string {
	if in == nil {
		return "chaos: disabled"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "chaos: seed=%d\n", in.seed)
	for _, r := range in.spec.Rules {
		fmt.Fprintf(&b, "  rule role=%q drop=%g dup=%g corrupt=%g delay=%v jitter=%v rate=%d\n",
			r.Role, r.Drop, r.Dup, r.Corrupt, r.Delay, r.Jitter, r.Rate)
	}
	for _, w := range in.spec.Partitions {
		if w.Round > 0 {
			fmt.Fprintf(&b, "  partition role=%q round=%d dur=%v\n", w.Role, w.Round, w.Dur)
		} else {
			fmt.Fprintf(&b, "  partition role=%q at=%v dur=%v\n", w.Role, w.At, w.Dur)
		}
	}
	for _, r := range in.spec.Resets {
		if r.Round > 0 {
			fmt.Fprintf(&b, "  reset role=%q round=%d\n", r.Role, r.Round)
		} else {
			fmt.Fprintf(&b, "  reset role=%q at=%v\n", r.Role, r.At)
		}
	}
	return strings.TrimRight(b.String(), "\n")
}

// FaultCounts returns the per-kind totals sorted by kind, for stable
// formatting in experiment output.
func (in *Injector) FaultCounts() []string {
	if in == nil {
		return nil
	}
	counts := in.trace.Counts()
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	out := make([]string, 0, len(kinds))
	for _, k := range kinds {
		out = append(out, fmt.Sprintf("%s=%d", k, counts[k]))
	}
	return out
}

// forget drops a closed conn from the live set and counts the close.
func (in *Injector) forget(c *faultConn) {
	in.closed.Add(1)
	in.mu.Lock()
	delete(in.live, c)
	in.mu.Unlock()
}

// faultListener wraps accepted connections.
type faultListener struct {
	in    *Injector
	role  Role
	inner transport.Listener
}

func (l *faultListener) Accept() (transport.Conn, error) {
	conn, err := l.inner.Accept()
	if err != nil {
		return nil, err
	}
	return l.in.WrapConn(l.role, conn), nil
}

func (l *faultListener) Close() error { return l.inner.Close() }
func (l *faultListener) Addr() string { return l.inner.Addr() }
