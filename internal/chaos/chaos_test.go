package chaos

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/protocol"
	"repro/internal/transport"
)

// drainConn keeps a pipe's far end from filling: mem pipes are buffered, but
// heavy tests may overflow the buffer otherwise.
func drainConn(c transport.Conn) {
	go func() {
		for {
			if _, err := c.Recv(); err != nil {
				return
			}
		}
	}()
}

// runScript pushes a fixed message sequence through a wrapped link and
// returns the deterministic trace keys.
func runScript(t *testing.T, seed uint64, n int) []string {
	t.Helper()
	in := New(seed, Spec{Rules: []Rule{{Role: RoleShard, Drop: 0.2, Dup: 0.1, Corrupt: 0.1}}})
	a, b := transport.Pipe()
	drainConn(b)
	conn := in.WrapConn(RoleShard, a)
	for i := 0; i < n; i++ {
		_ = conn.Send(protocol.StripeSeal{Round: int64(i), Sum: []byte{1, 2, 3, 4}})
	}
	_ = conn.Close()
	var keys []string
	for _, e := range in.Trace().Events() {
		keys = append(keys, e.Key())
	}
	return keys
}

func TestSameSeedIdenticalTrace(t *testing.T) {
	first := runScript(t, 42, 500)
	second := runScript(t, 42, 500)
	if len(first) == 0 {
		t.Fatal("no faults injected at 20% drop over 500 messages")
	}
	if len(first) != len(second) {
		t.Fatalf("trace lengths differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("trace diverges at %d: %q vs %q", i, first[i], second[i])
		}
	}
	other := runScript(t, 43, 500)
	if len(other) == len(first) && strings.Join(other, "\n") == strings.Join(first, "\n") {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestDecisionStreamIgnoresOutcome(t *testing.T) {
	// The decision at message index i must be a pure function of
	// (seed, role, ordinal, i): the raw draw stream from two conns with the
	// same link seed is identical regardless of wall time, partition state,
	// or what Send did with earlier results.
	inA := New(9, Spec{Rules: []Rule{{Role: RoleShard, Drop: 0.5, Jitter: time.Millisecond}}})
	inB := New(9, Spec{
		Rules:      []Rule{{Role: RoleShard, Drop: 0.5, Jitter: time.Millisecond}},
		Partitions: []Window{{Role: RoleShard, At: 0, Dur: time.Hour}},
	})
	pa1, pa2 := transport.Pipe()
	pb1, pb2 := transport.Pipe()
	drainConn(pa2)
	drainConn(pb2)
	ca := inA.WrapConn(RoleShard, pa1).(*faultConn)
	cb := inB.WrapConn(RoleShard, pb1).(*faultConn)
	for i := 0; i < 200; i++ {
		ia, da := ca.draw()
		ib, db := cb.draw()
		if ia != ib || da != db {
			t.Fatalf("draw %d differs: (%d %+v) vs (%d %+v)", i, ia, da, ib, db)
		}
	}
	_ = ca.Close()
	_ = cb.Close()
}

func TestPartitionWindowBlackholes(t *testing.T) {
	in := New(1, Spec{Partitions: []Window{{Role: RoleShard, At: 0, Dur: 200 * time.Millisecond}}})
	a, b := transport.Pipe()
	conn := in.WrapConn(RoleShard, a)
	if err := conn.Send(protocol.CheckinRate{}); err != nil {
		t.Fatalf("partitioned send should black-hole, got error: %v", err)
	}
	// Nothing must arrive at the far end.
	done := make(chan struct{})
	go func() {
		_, _ = b.Recv()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("message crossed an active partition")
	case <-time.After(50 * time.Millisecond):
	}
	// After the window closes, traffic flows again.
	time.Sleep(200 * time.Millisecond)
	if err := conn.Send(protocol.CheckinRate{}); err != nil {
		t.Fatalf("post-partition send: %v", err)
	}
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("message did not flow after the partition healed")
	}
	counts := in.Trace().Counts()
	if counts[FaultPartition] != 1 {
		t.Fatalf("want 1 partition fault, got %v", counts)
	}
	_ = conn.Close()
}

func TestScheduledReset(t *testing.T) {
	in := New(1, Spec{Resets: []Reset{{Role: RoleShard, At: 0}}})
	a, b := transport.Pipe()
	drainConn(b)
	conn := in.WrapConn(RoleShard, a)
	if err := conn.Send(protocol.CheckinRate{}); err == nil {
		t.Fatal("send across a due reset should fail")
	}
	if err := conn.Send(protocol.CheckinRate{}); err == nil {
		t.Fatal("send on a reset (closed) conn should fail")
	}
	if got := in.OpenConns(); got != 0 {
		t.Fatalf("reset conn still counted open: %d", got)
	}
	if in.Trace().Counts()[FaultReset] != 1 {
		t.Fatalf("want exactly 1 reset fault, got %v", in.Trace().Counts())
	}
}

func TestResetNowTearsDownLiveConns(t *testing.T) {
	in := New(1, Spec{})
	a, b := transport.Pipe()
	drainConn(b)
	conn := in.WrapConn(Role("shard:1"), a)
	in.ResetNow(Role("shard")) // class prefix matches shard:1
	if err := conn.Send(protocol.CheckinRate{}); err == nil {
		t.Fatal("send after ResetNow should fail")
	}
	if got := in.OpenConns(); got != 0 {
		t.Fatalf("open conns after ResetNow: %d", got)
	}
}

func TestRoundAddressedWindow(t *testing.T) {
	in := New(1, Spec{Partitions: []Window{{Role: RoleShard, Round: 3, Dur: time.Hour}}})
	if in.partitioned(RoleShard, time.Now()) {
		t.Fatal("round window open before its round")
	}
	in.AdvanceRound(2)
	if in.partitioned(RoleShard, time.Now()) {
		t.Fatal("round window open at round 2, scheduled for 3")
	}
	in.AdvanceRound(3)
	if !in.partitioned(RoleShard, time.Now()) {
		t.Fatal("round window not open at its round")
	}
}

func TestDelayDefersDelivery(t *testing.T) {
	in := New(1, Spec{Rules: []Rule{{Role: RoleDevice, Delay: 120 * time.Millisecond}}})
	a, b := transport.Pipe()
	conn := in.WrapConn(RoleDevice, a)
	start := time.Now()
	if err := conn.Send(protocol.CheckinRate{}); err != nil {
		t.Fatalf("send: %v", err)
	}
	if _, err := b.Recv(); err != nil {
		t.Fatalf("recv: %v", err)
	}
	if d := time.Since(start); d < 100*time.Millisecond {
		t.Fatalf("delayed message arrived after only %v", d)
	}
	_ = conn.Close()
	// The sender goroutine must wind down.
	deadline := time.Now().Add(time.Second)
	for in.SenderGoroutines() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("sender goroutines leaked: %d", in.SenderGoroutines())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestQueueFullDrops(t *testing.T) {
	in := New(1, Spec{Rules: []Rule{{Role: RoleDevice, Delay: time.Hour, Queue: 2}}})
	a, b := transport.Pipe()
	drainConn(b)
	conn := in.WrapConn(RoleDevice, a)
	for i := 0; i < 10; i++ {
		if err := conn.Send(protocol.CheckinRate{}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if in.Trace().Counts()[FaultQueueFull] == 0 {
		t.Fatal("no queue-full faults recorded with depth 2 and an hour delay")
	}
	_ = conn.Close()
}

func TestCorruptStripeSealDetectable(t *testing.T) {
	in := New(1, Spec{Rules: []Rule{{Role: RoleShard, Corrupt: 0.999999}}})
	a, b := transport.Pipe()
	conn := in.WrapConn(RoleShard, a)
	orig := protocol.StripeSeal{Round: 1, Sum: []byte{9, 9, 9, 9, 9, 9, 9, 9}}
	if err := conn.Send(orig); err != nil {
		t.Fatalf("send: %v", err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	seal, ok := got.(protocol.StripeSeal)
	if !ok {
		t.Fatalf("got %T", got)
	}
	if len(seal.Sum) != 2 || seal.Sum[0] != 0xde {
		t.Fatalf("seal not corrupted: % x", seal.Sum)
	}
	if len(orig.Sum) != 8 || orig.Sum[0] != 9 {
		t.Fatal("corruption mutated the caller's message")
	}
	_ = conn.Close()
}

func TestNilInjectorWrapsNothing(t *testing.T) {
	var in *Injector
	a, _ := transport.Pipe()
	if got := in.WrapConn(RoleDevice, a); got != a {
		t.Fatal("nil injector should return the conn unchanged")
	}
	dial := func() (transport.Conn, error) { return a, nil }
	if got := in.WrapDialer(RoleDevice, dial); fmt.Sprintf("%p", got) == "" {
		t.Fatal("unreachable")
	}
	in.AdvanceRound(5)
	in.PartitionNow(RoleDevice, time.Second)
	in.ResetNow(RoleDevice)
	if in.Seed() != 0 || in.OpenConns() != 0 || in.SenderGoroutines() != 0 {
		t.Fatal("nil injector accounting not zero")
	}
	if in.Plan() != "chaos: disabled" {
		t.Fatalf("nil plan: %q", in.Plan())
	}
}

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec("shard:drop=0.05,jitter=200ms;shard:1:partition@3s+2s;shard:2:reset@r4;rate=1024,queue=8")
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Rules) != 2 {
		t.Fatalf("rules: %+v", spec.Rules)
	}
	r := spec.Rules[0]
	if r.Role != "shard" || r.Drop != 0.05 || r.Jitter != 200*time.Millisecond {
		t.Fatalf("rule 0: %+v", r)
	}
	if spec.Rules[1].Role != "" || spec.Rules[1].Rate != 1024 || spec.Rules[1].Queue != 8 {
		t.Fatalf("rule 1: %+v", spec.Rules[1])
	}
	if len(spec.Partitions) != 1 || spec.Partitions[0].Role != "shard:1" ||
		spec.Partitions[0].At != 3*time.Second || spec.Partitions[0].Dur != 2*time.Second {
		t.Fatalf("partitions: %+v", spec.Partitions)
	}
	if len(spec.Resets) != 1 || spec.Resets[0].Role != "shard:2" || spec.Resets[0].Round != 4 {
		t.Fatalf("resets: %+v", spec.Resets)
	}

	for _, bad := range []string{
		"drop=1.5", "drop=x", "bogus=1", "shard:partition@3s", "reset@rX", "delay=-1s", "justtext",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted invalid spec", bad)
		}
	}

	// The effective profile folds matching rules with later overrides.
	eff := spec.effective(Role("shard:7"))
	if eff.Drop != 0.05 || eff.Rate != 1024 || eff.Queue != 8 {
		t.Fatalf("effective: %+v", eff)
	}
}

func TestMatchRole(t *testing.T) {
	cases := []struct {
		rule, link Role
		want       bool
	}{
		{"", "shard:1", true},
		{"shard", "shard", true},
		{"shard", "shard:1", true},
		{"shard:1", "shard:1", true},
		{"shard:1", "shard:2", false},
		{"shard", "device", false},
		{"device", "shard:1", false},
	}
	for _, c := range cases {
		if got := matchRole(c.rule, c.link); got != c.want {
			t.Errorf("matchRole(%q,%q) = %v, want %v", c.rule, c.link, got, c.want)
		}
	}
}
