package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseSpec parses the CLI fault-schedule grammar used by the -chaos flags:
//
//	spec    := clause (';' clause)*
//	clause  := [role ':'] item (',' item)*
//	item    := key '=' value          (drop, dup, corrupt, delay, jitter,
//	                                   rate, queue)
//	         | 'partition@' at '+' dur
//	         | 'reset@' at
//	at      := duration | 'r' round
//
// e.g. "shard:drop=0.05,jitter=200ms;shard:1:partition@3s+2s;shard:2:reset@r4"
// — 5% drop and ≤200ms jitter on every shard link, a 2s partition of shard 1
// opening 3s in, and a connection reset on shard 2's links at round 4. An
// empty role matches every link.
func ParseSpec(s string) (Spec, error) {
	var spec Spec
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		role, items, err := splitClause(clause)
		if err != nil {
			return Spec{}, err
		}
		rule := Rule{Role: role}
		haveRule := false
		for _, item := range strings.Split(items, ",") {
			item = strings.TrimSpace(item)
			if item == "" {
				continue
			}
			switch {
			case strings.HasPrefix(item, "partition@"):
				at, round, dur, err := parseAtDur(strings.TrimPrefix(item, "partition@"), true)
				if err != nil {
					return Spec{}, fmt.Errorf("chaos spec %q: %v", item, err)
				}
				spec.Partitions = append(spec.Partitions, Window{Role: role, At: at, Round: round, Dur: dur})
			case strings.HasPrefix(item, "reset@"):
				at, round, _, err := parseAtDur(strings.TrimPrefix(item, "reset@"), false)
				if err != nil {
					return Spec{}, fmt.Errorf("chaos spec %q: %v", item, err)
				}
				spec.Resets = append(spec.Resets, Reset{Role: role, At: at, Round: round})
			default:
				if err := parseRuleItem(&rule, item); err != nil {
					return Spec{}, err
				}
				haveRule = true
			}
		}
		if haveRule {
			spec.Rules = append(spec.Rules, rule)
		}
	}
	return spec, nil
}

// splitClause separates the optional role prefix from the item list. The
// role itself may contain ':' ("shard:2"), so the separator is the last ':'
// before the first '=' or '@'.
func splitClause(clause string) (Role, string, error) {
	stop := strings.IndexAny(clause, "=@")
	if stop < 0 {
		return "", "", fmt.Errorf("chaos spec %q: no key=value or @schedule item", clause)
	}
	if i := strings.LastIndex(clause[:stop], ":"); i >= 0 {
		return Role(clause[:i]), clause[i+1:], nil
	}
	return "", clause, nil
}

// parseAtDur parses "3s", "r4", "3s+2s", or "r4+2s".
func parseAtDur(s string, wantDur bool) (at time.Duration, round int64, dur time.Duration, err error) {
	trigger := s
	if i := strings.Index(s, "+"); i >= 0 {
		trigger = s[:i]
		dur, err = time.ParseDuration(s[i+1:])
		if err != nil {
			return 0, 0, 0, fmt.Errorf("bad duration %q", s[i+1:])
		}
	} else if wantDur {
		return 0, 0, 0, fmt.Errorf("missing +duration")
	}
	if strings.HasPrefix(trigger, "r") {
		round, err = strconv.ParseInt(trigger[1:], 10, 64)
		if err != nil || round <= 0 {
			return 0, 0, 0, fmt.Errorf("bad round %q", trigger)
		}
		return 0, round, dur, nil
	}
	at, err = time.ParseDuration(trigger)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("bad offset %q", trigger)
	}
	return at, 0, dur, nil
}

func parseRuleItem(r *Rule, item string) error {
	i := strings.Index(item, "=")
	if i < 0 {
		return fmt.Errorf("chaos spec %q: want key=value", item)
	}
	key, val := item[:i], item[i+1:]
	switch key {
	case "drop", "dup", "corrupt":
		p, err := strconv.ParseFloat(val, 64)
		if err != nil || p < 0 || p >= 1 {
			return fmt.Errorf("chaos spec %q: want probability in [0,1)", item)
		}
		switch key {
		case "drop":
			r.Drop = p
		case "dup":
			r.Dup = p
		case "corrupt":
			r.Corrupt = p
		}
	case "delay", "jitter":
		d, err := time.ParseDuration(val)
		if err != nil || d < 0 {
			return fmt.Errorf("chaos spec %q: want duration", item)
		}
		if key == "delay" {
			r.Delay = d
		} else {
			r.Jitter = d
		}
	case "rate":
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil || n <= 0 {
			return fmt.Errorf("chaos spec %q: want bytes/sec > 0", item)
		}
		r.Rate = n
	case "queue":
		n, err := strconv.Atoi(val)
		if err != nil || n <= 0 {
			return fmt.Errorf("chaos spec %q: want queue depth > 0", item)
		}
		r.Queue = n
	default:
		return fmt.Errorf("chaos spec: unknown key %q", key)
	}
	return nil
}
