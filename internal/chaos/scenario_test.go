package chaos

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/remote"
	"repro/internal/transport"
)

// acceptancePeer tolerates the acceptance spec's 200ms jitter on the
// heartbeat path (tolerance = interval × miss = 500ms) while still noticing
// a 2s partition well inside the window.
func acceptancePeer() remote.Options {
	return remote.Options{
		HeartbeatInterval: 100 * time.Millisecond,
		HeartbeatMiss:     5,
		BackoffMin:        5 * time.Millisecond,
		BackoffMax:        50 * time.Millisecond,
	}
}

// TestScenarioEndToEnd is the acceptance scenario from the issue: a 1
// coordinator + 3 shard fleet under 5% drop and 200ms jitter on every shard
// link, a 2s partition of shard 1 opening at round 3, and a scheduled
// connection reset of shard 2 at round 4 — must still commit 5 rounds with
// every invariant green, and the fault schedule must be reproducible from
// the seed alone.
func TestScenarioEndToEnd(t *testing.T) {
	base := ScenarioConfig{
		Seed:             42,
		Shards:           3,
		TargetDevices:    8,
		Rounds:           5,
		IdenticalDevices: true,
		Peer:             acceptancePeer(),
	}

	// Fault-free reference run: same swarm, empty schedule. Its lineage is
	// the ground truth the chaos run's commits must match.
	ref, err := RunScenario(base)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if !ref.Report.OK() {
		t.Fatalf("reference run invariants:\n%s", ref.Report)
	}
	if ref.FaultTotal != 0 {
		t.Fatalf("reference run recorded %d faults with an empty spec", ref.FaultTotal)
	}

	cfg := base
	cfg.Spec = Spec{
		Rules:      []Rule{{Role: RoleShard, Drop: 0.05, Jitter: 200 * time.Millisecond}},
		Partitions: []Window{{Role: "shard:1", Round: 3, Dur: 2 * time.Second}},
		Resets:     []Reset{{Role: "shard:2", Round: 4}},
	}
	cfg.Reference = ref.Lineage
	res, err := RunScenario(cfg)
	if err != nil {
		t.Fatalf("chaos run: %v\nfaults: %v", err, res.FaultCounts)
	}
	t.Logf("chaos run: %d rounds in %v, faults %v\n%s", res.Rounds, res.Elapsed, res.FaultCounts, res.Plan)
	if res.Rounds < cfg.Rounds {
		t.Fatalf("committed %d/%d rounds", res.Rounds, cfg.Rounds)
	}
	if !res.Report.OK() {
		t.Fatalf("invariants violated (seed=%d):\n%s\nplan:\n%s", res.Seed, res.Report, res.Plan)
	}
	if res.FaultTotal == 0 {
		t.Fatal("chaos run recorded no faults — the schedule never engaged")
	}

	// Reproducibility: the same seed and spec yield the identical plan and,
	// per link, the identical fault-decision stream — the property that lets
	// a failing scenario be replayed from the seed printed in its log.
	injA, injB := New(cfg.Seed, cfg.Spec), New(cfg.Seed, cfg.Spec)
	if injA.Plan() != injB.Plan() {
		t.Fatalf("plans differ for one seed:\n%s\n---\n%s", injA.Plan(), injB.Plan())
	}
	for i := 0; i < cfg.Shards; i++ {
		role := Role(fmt.Sprintf("shard:%d", i))
		a := decisionStream(t, injA, role, 256)
		b := decisionStream(t, injB, role, 256)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("link %s: decision streams diverge for seed %d", role, cfg.Seed)
		}
	}
}

// decisionStream draws the first n fault decisions of role's next link.
func decisionStream(t *testing.T, in *Injector, role Role, n int) []decision {
	t.Helper()
	c1, c2 := transport.Pipe()
	fc, ok := in.WrapConn(role, c1).(*faultConn)
	if !ok {
		t.Fatalf("WrapConn(%s) did not wrap", role)
	}
	t.Cleanup(func() { fc.Close(); c2.Close() })
	out := make([]decision, n)
	for i := range out {
		_, out[i] = fc.draw()
	}
	return out
}
