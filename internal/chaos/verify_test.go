package chaos

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/tensor"
)

func ckpt(task string, round int64, params ...float64) *checkpoint.Checkpoint {
	return &checkpoint.Checkpoint{TaskName: task, Round: round, Weight: 1, Params: tensor.Vector(params)}
}

func TestWatchStoreLineage(t *testing.T) {
	w := NewWatchStore(storage.NewMem())
	for _, r := range []int64{1, 2, 3} {
		if err := w.PutCheckpoint(ckpt("t", r, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if rep := Verify(w.LineageProbe()); !rep.OK() {
		t.Fatalf("clean lineage failed: %v", rep)
	}

	// Double commit.
	w2 := NewWatchStore(storage.NewMem())
	_ = w2.PutCheckpoint(ckpt("t", 1, 1))
	_ = w2.PutCheckpoint(ckpt("t", 1, 2))
	if rep := Verify(w2.LineageProbe()); rep.OK() {
		t.Fatal("double commit not caught")
	} else if !strings.Contains(rep.Err().Error(), "double commit") {
		t.Fatalf("wrong failure: %v", rep.Err())
	}

	// Fork (regression past the head).
	w3 := NewWatchStore(storage.NewMem())
	_ = w3.PutCheckpoint(ckpt("t", 5, 1))
	_ = w3.PutCheckpoint(ckpt("t", 3, 2))
	if rep := Verify(w3.LineageProbe()); rep.OK() {
		t.Fatal("lineage fork not caught")
	}
}

func TestSumProbe(t *testing.T) {
	ref := []*checkpoint.Checkpoint{ckpt("t", 1, 0.5, 0.5), ckpt("t", 2, 0.25, 0.75)}
	good := []*checkpoint.Checkpoint{ckpt("t", 1, 0.5, 0.5)}
	if rep := Verify(SumProbe(good, ref, 1e-9)); !rep.OK() {
		t.Fatalf("matching lineage failed: %v", rep)
	}
	bad := []*checkpoint.Checkpoint{ckpt("t", 2, 0.25, 0.80)}
	if rep := Verify(SumProbe(bad, ref, 1e-9)); rep.OK() {
		t.Fatal("diverged sum not caught")
	}
	if rep := Verify(SumProbe(nil, ref, 1e-9)); rep.OK() {
		t.Fatal("empty lineage should fail (nothing was checked)")
	}
}

func TestCounterWatch(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("test_events_total")
	w := NewCounterWatch(reg)
	w.Sample()
	c.Add(5)
	w.Sample()
	if rep := Verify(w.Probe()); !rep.OK() {
		t.Fatalf("monotonic counters failed: %v", rep)
	}
}

func TestQuotaProbe(t *testing.T) {
	ok := func() (QuotaLedger, error) {
		return QuotaLedger{Granted: 10, Consumed: 6, Revoked: 4}, nil
	}
	if rep := Verify(QuotaProbe(ok)); !rep.OK() {
		t.Fatalf("balanced ledger failed: %v", rep)
	}
	leak := func() (QuotaLedger, error) {
		return QuotaLedger{Granted: 10, Consumed: 6, Revoked: 3}, nil
	}
	rep := Verify(QuotaProbe(leak), CheckFunc{Probe: "always-green", Fn: func() error { return nil }})
	if rep.OK() {
		t.Fatal("leaked ledger not caught")
	}
	if len(rep.Passed) != 1 || rep.Passed[0] != "always-green" {
		t.Fatalf("passed: %v", rep.Passed)
	}
	if !strings.Contains(rep.String(), "FAIL quota-conservation") {
		t.Fatalf("report: %s", rep.String())
	}
}

func TestConnProbeDrains(t *testing.T) {
	in := New(1, Spec{})
	if rep := Verify(ConnProbe(in)); !rep.OK() {
		t.Fatalf("fresh injector conn probe: %v", rep)
	}
	_ = fmt.Sprint() // keep fmt imported alongside future edits
}
