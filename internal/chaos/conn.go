package chaos

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/protocol"
	"repro/internal/transport"
)

// delivery is one deferred message: deliver msg no earlier than at.
type delivery struct {
	msg interface{}
	at  time.Time
}

// faultConn wraps one transport.Conn in a link's fault profile. All
// stochastic decisions draw from a per-link RNG seeded by (scenario seed,
// role, link ordinal), with a FIXED number of draws per message index —
// so the decision at index i of link (role, ordinal) is identical across
// runs regardless of wall time, partition state, or goroutine scheduling.
type faultConn struct {
	in    *Injector
	role  Role
	ord   int
	inner transport.Conn
	rule  Rule

	mu       sync.Mutex
	rng      *rand.Rand
	seq      int // send index
	rseq     int // receive index
	lastAt   time.Time
	nextFree time.Time // bandwidth-cap cursor

	queue     chan delivery
	quit      chan struct{}
	closeOnce sync.Once
	closed    bool
}

func newFaultConn(in *Injector, role Role, ord int, inner transport.Conn, rule Rule) *faultConn {
	c := &faultConn{
		in:    in,
		role:  role,
		ord:   ord,
		inner: inner,
		rule:  rule,
		rng:   rand.New(rand.NewSource(int64(linkSeed(in.seed, role, ord)))),
		quit:  make(chan struct{}),
	}
	if rule.delayed() {
		c.queue = make(chan delivery, rule.Queue)
		in.senders.Add(1)
		go c.sender()
	}
	return c
}

// decision is one message's full fault draw.
type decision struct {
	drop    bool
	dup     bool
	corrupt bool
	jitter  time.Duration
}

// draw consumes exactly four RNG values per message, whatever the outcome,
// keeping the per-index decision stream pure.
func (c *faultConn) draw() (int, decision) {
	c.mu.Lock()
	defer c.mu.Unlock()
	idx := c.seq
	c.seq++
	var d decision
	d.drop = c.rng.Float64() < c.rule.Drop
	d.dup = c.rng.Float64() < c.rule.Dup
	d.corrupt = c.rng.Float64() < c.rule.Corrupt
	frac := c.rng.Float64()
	if c.rule.Jitter > 0 {
		d.jitter = time.Duration(frac * float64(c.rule.Jitter))
	}
	return idx, d
}

func (c *faultConn) record(seq int, msg interface{}, fault, detail string) {
	c.in.trace.record(Event{
		Elapsed: time.Since(c.in.start),
		Role:    c.role,
		Link:    c.ord,
		Seq:     seq,
		Msg:     msgName(msg),
		Fault:   fault,
		Detail:  detail,
	})
}

// recordNow records a link-level (not message-indexed) event, e.g. a
// scripted reset.
func (c *faultConn) recordNow(fault, detail string) {
	c.mu.Lock()
	seq := c.seq
	c.mu.Unlock()
	c.record(seq, nil, fault, detail)
}

// Send implements transport.Conn with the link's fault profile applied.
func (c *faultConn) Send(msg interface{}) error {
	idx, d := c.draw()

	// Scheduled resets fire on the first send at/after their trigger.
	now := time.Now()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("chaos: connection closed")
	}
	c.mu.Unlock()
	if ri := c.in.claimReset(c.role, now); ri >= 0 {
		c.record(idx, msg, FaultReset, "scheduled")
		_ = c.Close()
		return fmt.Errorf("chaos: connection reset")
	}

	if c.in.partitioned(c.role, now) {
		// Black hole: the send "succeeds" but nothing crosses the
		// partition — the sender learns only through missed heartbeats.
		c.record(idx, msg, FaultPartition, "")
		return nil
	}
	if d.drop {
		c.record(idx, msg, FaultDrop, "")
		return nil
	}
	if d.corrupt {
		damaged, ok := corruptMsg(msg)
		if !ok {
			// No structurally damageable payload: corrupt degrades to a
			// drop (a torn frame the codec rejects whole).
			c.record(idx, msg, FaultCorrupt, "dropped: no payload to damage")
			return nil
		}
		c.record(idx, msg, FaultCorrupt, "payload damaged")
		msg = damaged
	}

	if !c.rule.delayed() {
		if err := c.inner.Send(msg); err != nil {
			return err
		}
		if d.dup {
			c.record(idx, msg, FaultDuplicate, "")
			return c.inner.Send(msg)
		}
		return nil
	}

	// Deferred path: compute the delivery time under the delay, jitter,
	// and bandwidth cap, keeping per-link delivery order monotonic (a TCP
	// stream reorders nothing; latency only stretches spacing).
	c.mu.Lock()
	at := now.Add(c.rule.Delay + d.jitter)
	if c.rule.Rate > 0 {
		busy := time.Duration(float64(msgSize(msg)) / float64(c.rule.Rate) * float64(time.Second))
		if c.nextFree.After(at) {
			at = c.nextFree
		}
		c.nextFree = at.Add(busy)
	}
	if at.Before(c.lastAt) {
		at = c.lastAt
	}
	c.lastAt = at
	c.mu.Unlock()

	if d := at.Sub(now); d > 0 {
		c.record(idx, msg, FaultDelay, fmt.Sprintf("%v", d.Round(time.Millisecond)))
	}
	n := 1
	if d.dup {
		c.record(idx, msg, FaultDuplicate, "")
		n = 2
	}
	for i := 0; i < n; i++ {
		select {
		case c.queue <- delivery{msg: msg, at: at}:
		default:
			c.record(idx, msg, FaultQueueFull, fmt.Sprintf("queue=%d", c.rule.Queue))
			return nil
		}
	}
	return nil
}

// sender drains the deferred-delivery queue in order, sleeping each message
// to its delivery time. It exits when the connection closes.
func (c *faultConn) sender() {
	defer c.in.senders.Add(-1)
	for {
		select {
		case <-c.quit:
			return
		case d := <-c.queue:
			if wait := time.Until(d.at); wait > 0 {
				t := time.NewTimer(wait)
				select {
				case <-c.quit:
					t.Stop()
					return
				case <-t.C:
				}
			}
			if err := c.inner.Send(d.msg); err != nil {
				// The underlying stream died; tear the wrapper down so
				// accounting sees the close.
				_ = c.Close()
				return
			}
		}
	}
}

// Recv implements transport.Conn: inbound messages are discarded while a
// partition window covers this link (the blackhole cuts both directions).
func (c *faultConn) Recv() (interface{}, error) {
	for {
		msg, err := c.inner.Recv()
		if err != nil {
			return nil, err
		}
		if c.in.partitioned(c.role, time.Now()) {
			c.mu.Lock()
			rseq := c.rseq
			c.rseq++
			c.mu.Unlock()
			c.record(rseq, msg, FaultPartitionRecv, "")
			continue
		}
		c.mu.Lock()
		c.rseq++
		c.mu.Unlock()
		return msg, nil
	}
}

// Close implements transport.Conn.
func (c *faultConn) Close() error {
	var err error
	c.closeOnce.Do(func() {
		c.mu.Lock()
		c.closed = true
		c.mu.Unlock()
		close(c.quit)
		err = c.inner.Close()
		c.in.forget(c)
	})
	return err
}

// msgName is the short type name for trace events.
func msgName(msg interface{}) string {
	if msg == nil {
		return ""
	}
	if e, ok := msg.(*transport.Encoded); ok {
		return "Encoded:" + msgName(e.Message())
	}
	return fmt.Sprintf("%T", msg)
}

// msgSize approximates a message's wire size for the bandwidth cap: the
// large payload fields plus a small framing constant.
func msgSize(msg interface{}) int {
	switch m := msg.(type) {
	case *transport.Encoded:
		return msgSize(m.Message())
	case protocol.StripeSeal:
		return len(m.Sum) + 128
	case protocol.RoundConfig:
		return len(m.Plan) + len(m.Checkpoint) + 128
	case protocol.CheckinResponse:
		return len(m.Plan) + len(m.Checkpoint) + 64
	case protocol.ReportRequest:
		return len(m.Update) + 64
	default:
		return 64
	}
}

// corruptMsg returns a structurally damaged copy of msg — damage the
// receiving codec or validator DETECTS (an undecodable checkpoint, an
// unparseable stripe sum), modeling a torn frame. Bit flips that survive
// decoding are out of scope: the stack trusts its own links' payload
// integrity (no checksums), documented in DESIGN.md. Messages with no
// damageable payload return ok=false and degrade to a drop.
func corruptMsg(msg interface{}) (interface{}, bool) {
	switch m := msg.(type) {
	case *transport.Encoded:
		// Corrupting a shared pre-framed message must not touch the cached
		// frame other links send; damage a plain copy instead.
		return corruptMsg(m.Message())
	case protocol.StripeSeal:
		m.Sum = []byte{0xde, 0xad}
		return m, true
	case protocol.RoundConfig:
		m.Checkpoint = []byte{0xbe, 0xef}
		return m, true
	case protocol.CheckinResponse:
		if len(m.Checkpoint) == 0 {
			return nil, false
		}
		m.Checkpoint = []byte{0xbe, 0xef}
		return m, true
	case protocol.ReportRequest:
		if len(m.Update) == 0 {
			return nil, false
		}
		m.Update = []byte{0xde, 0xad}
		return m, true
	default:
		return nil, false
	}
}
