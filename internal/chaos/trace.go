package chaos

import (
	"fmt"
	"sync"
	"time"
)

// Fault names every injected fault kind — the chaos vocabulary. They appear
// in trace events, scenario fault counts, and the DESIGN.md failure-mode
// matrix.
const (
	FaultDrop          = "drop"           // message silently discarded
	FaultDelay         = "delay"          // message deferred by delay+jitter
	FaultDuplicate     = "duplicate"      // message delivered twice
	FaultCorrupt       = "corrupt"        // payload structurally damaged
	FaultBandwidth     = "bandwidth"      // delivery deferred by the byte-rate cap
	FaultReset         = "reset"          // connection torn down mid-stream
	FaultPartition     = "partition"      // send black-holed inside a partition window
	FaultPartitionRecv = "partition-recv" // inbound message discarded inside a window
	FaultQueueFull     = "queue-full"     // bounded delay queue overflowed; message dropped
)

// Event is one recorded fault decision. The reproducible part of an event
// is (Role, Link, Seq, Fault): per-link decisions are a pure function of
// (seed, role, link ordinal, message index), so two runs with the same seed
// produce the same decision at the same index of the same link. Elapsed and
// Msg describe the particular run (scheduling-dependent) and are excluded
// from determinism comparisons.
type Event struct {
	// Elapsed is the wall offset from the injector's start.
	Elapsed time.Duration
	// Role and Link identify the connection (link ordinal within the role).
	Role Role
	Link int
	// Seq is the message index on that link (send index, or receive index
	// for partition-recv events).
	Seq int
	// Msg is the message's Go type (short form).
	Msg string
	// Fault is one of the Fault* constants; Detail carries parameters
	// (e.g. the chosen delay).
	Fault  string
	Detail string
}

// Key is the deterministic identity of the event — equal across runs with
// the same seed whenever the same link processed the same message sequence.
func (e Event) Key() string {
	return fmt.Sprintf("%s/%d#%d:%s", e.Role, e.Link, e.Seq, e.Fault)
}

// String renders one trace line.
func (e Event) String() string {
	s := fmt.Sprintf("%8.3fs %s/%d #%d %s %s", e.Elapsed.Seconds(), e.Role, e.Link, e.Seq, e.Fault, e.Msg)
	if e.Detail != "" {
		s += " (" + e.Detail + ")"
	}
	return s
}

// traceCap bounds the in-memory trace; faults beyond it still count in
// Counts but drop their event records.
const traceCap = 16384

// Trace accumulates fault events and per-kind totals. Safe for concurrent
// use (every link records into the shared trace).
type Trace struct {
	mu      sync.Mutex
	events  []Event
	dropped int64
	counts  map[string]int64
}

func newTrace() *Trace {
	return &Trace{counts: make(map[string]int64)}
}

func (t *Trace) record(e Event) {
	t.mu.Lock()
	t.counts[e.Fault]++
	if len(t.events) < traceCap {
		t.events = append(t.events, e)
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// Events snapshots the recorded events in record order.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Counts snapshots the per-fault totals (complete even past the event cap).
func (t *Trace) Counts() map[string]int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int64, len(t.counts))
	for k, v := range t.counts {
		out[k] = v
	}
	return out
}

// Total is the number of faults injected across all kinds.
func (t *Trace) Total() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var total int64
	for _, v := range t.counts {
		total += v
	}
	return total
}
