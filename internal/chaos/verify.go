package chaos

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/obs"
	"repro/internal/storage"
)

// Probe is one post-scenario invariant check.
type Probe interface {
	Name() string
	// Check returns nil when the invariant held.
	Check() error
}

// CheckFunc adapts a closure into a Probe.
type CheckFunc struct {
	Probe string
	Fn    func() error
}

// Name implements Probe.
func (c CheckFunc) Name() string { return c.Probe }

// Check implements Probe.
func (c CheckFunc) Check() error { return c.Fn() }

// Report is the outcome of one Verify run.
type Report struct {
	Passed   []string
	Failures []error
}

// OK reports whether every probe held.
func (r Report) OK() bool { return len(r.Failures) == 0 }

// String renders the report, one probe per line.
func (r Report) String() string {
	var b strings.Builder
	for _, p := range r.Passed {
		fmt.Fprintf(&b, "ok   %s\n", p)
	}
	for _, err := range r.Failures {
		fmt.Fprintf(&b, "FAIL %v\n", err)
	}
	return strings.TrimRight(b.String(), "\n")
}

// Err returns nil when the report is green, else one error joining every
// failure.
func (r Report) Err() error {
	if r.OK() {
		return nil
	}
	msgs := make([]string, len(r.Failures))
	for i, err := range r.Failures {
		msgs[i] = err.Error()
	}
	return fmt.Errorf("chaos: %d invariant(s) violated: %s", len(r.Failures), strings.Join(msgs, "; "))
}

// Verify runs every probe and collects the report — the invariant checker
// every chaos scenario ends with. Probes must run after teardown (rounds
// stopped, connections closed) so accounting checks see the quiescent state.
func Verify(probes ...Probe) Report {
	var r Report
	for _, p := range probes {
		if err := p.Check(); err != nil {
			r.Failures = append(r.Failures, fmt.Errorf("%s: %w", p.Name(), err))
		} else {
			r.Passed = append(r.Passed, p.Name())
		}
	}
	return r
}

// --- checkpoint lineage ---

// WatchStore wraps a storage.Store and records every committed checkpoint,
// so lineage invariants — strictly advancing rounds, a single head, no
// double-commit — can be checked after a scenario. It is the store handed to
// the coordinator under test.
type WatchStore struct {
	storage.Store

	mu      sync.Mutex
	commits map[string][]*checkpoint.Checkpoint // task -> commit order
	errs    []error
}

// NewWatchStore wraps inner.
func NewWatchStore(inner storage.Store) *WatchStore {
	return &WatchStore{Store: inner, commits: make(map[string][]*checkpoint.Checkpoint)}
}

// PutCheckpoint implements storage.Store, recording the commit and checking
// lineage monotonicity at commit time (a violation is latched, not raced).
func (w *WatchStore) PutCheckpoint(c *checkpoint.Checkpoint) error {
	w.mu.Lock()
	prev := w.commits[c.TaskName]
	if len(prev) > 0 {
		head := prev[len(prev)-1]
		if c.Round == head.Round {
			w.errs = append(w.errs, fmt.Errorf("task %q: double commit of round %d", c.TaskName, c.Round))
		} else if c.Round < head.Round {
			w.errs = append(w.errs, fmt.Errorf("task %q: lineage fork — committed round %d after head %d", c.TaskName, c.Round, head.Round))
		}
	}
	w.commits[c.TaskName] = append(prev, c.Clone())
	w.mu.Unlock()
	return w.Store.PutCheckpoint(c)
}

// Commits returns the commit-ordered lineage recorded for a task.
func (w *WatchStore) Commits(task string) []*checkpoint.Checkpoint {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]*checkpoint.Checkpoint, len(w.commits[task]))
	copy(out, w.commits[task])
	return out
}

// LineageProbe is the Probe over the recorded lineage.
func (w *WatchStore) LineageProbe() Probe {
	return CheckFunc{Probe: "checkpoint-lineage", Fn: func() error {
		w.mu.Lock()
		defer w.mu.Unlock()
		if len(w.errs) > 0 {
			return w.errs[0]
		}
		for task, cs := range w.commits {
			for i := 1; i < len(cs); i++ {
				if cs[i].Round <= cs[i-1].Round {
					return fmt.Errorf("task %q: round %d committed after %d", task, cs[i].Round, cs[i-1].Round)
				}
			}
		}
		return nil
	}}
}

// --- connection / goroutine accounting ---

// settle polls cond until it returns nil or the deadline passes, returning
// cond's last error. Teardown is asynchronous (conn close fan-out, actor
// stops), so accounting probes give the system a moment to quiesce.
func settle(d time.Duration, cond func() error) error {
	deadline := time.Now().Add(d)
	for {
		err := cond()
		if err == nil || time.Now().After(deadline) {
			return err
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// ConnProbe asserts the injector's conn accounting drained: every wrapped
// connection was closed and every deferred-delivery sender goroutine exited.
func ConnProbe(in *Injector) Probe {
	return CheckFunc{Probe: "conn-accounting", Fn: func() error {
		return settle(5*time.Second, func() error {
			if n := in.OpenConns(); n != 0 {
				return fmt.Errorf("%d wrapped connection(s) still open", n)
			}
			if n := in.SenderGoroutines(); n != 0 {
				return fmt.Errorf("%d sender goroutine(s) still live", n)
			}
			return nil
		})
	}}
}

// GoroutineProbe captures the current goroutine count and asserts the count
// returns near it (within slack) after the scenario — the leak check for
// device pumps, actor loops, and redial loops.
func GoroutineProbe(slack int) Probe {
	before := runtime.NumGoroutine()
	return CheckFunc{Probe: "goroutine-accounting", Fn: func() error {
		return settle(5*time.Second, func() error {
			if now := runtime.NumGoroutine(); now > before+slack {
				return fmt.Errorf("goroutines grew %d -> %d (slack %d)", before, now, slack)
			}
			return nil
		})
	}}
}

// --- /metrics counter monotonicity ---

// CounterWatch samples an obs registry's counters and asserts none ever
// decreases — reconnects and re-registrations must not reset exported
// counters. Call Sample during the scenario (each round is a natural point);
// Probe checks the recorded sequence.
type CounterWatch struct {
	reg *obs.Registry

	mu   sync.Mutex
	last map[string]int64
	errs []error
}

// NewCounterWatch watches reg (obs.Default for the in-process registry).
func NewCounterWatch(reg *obs.Registry) *CounterWatch {
	return &CounterWatch{reg: reg, last: make(map[string]int64)}
}

// Sample snapshots the registry and checks against the previous sample.
func (c *CounterWatch) Sample() {
	exp := c.reg.Export()
	c.mu.Lock()
	defer c.mu.Unlock()
	for name, v := range exp.Counters {
		if prev, ok := c.last[name]; ok && v < prev {
			c.errs = append(c.errs, fmt.Errorf("counter %q went backward: %d -> %d", name, prev, v))
		}
		c.last[name] = v
	}
}

// Probe returns the monotonicity probe (takes one final sample first).
func (c *CounterWatch) Probe() Probe {
	return CheckFunc{Probe: "counters-monotonic", Fn: func() error {
		c.Sample()
		c.mu.Lock()
		defer c.mu.Unlock()
		if len(c.errs) > 0 {
			return c.errs[0]
		}
		return nil
	}}
}

// --- aggregate-sum correctness ---

// SumProbe asserts a committed lineage equals a fault-free reference
// lineage within tol — the "never commit an incorrect survivor sum" check.
// Scenario drivers arrange for it to be decidable by giving every device
// identical data and runtime seed: the weighted average of identical update
// vectors is that vector regardless of which subset survives the faults, so
// any divergence means a corrupt or double-counted contribution reached a
// commit.
func SumProbe(got, want []*checkpoint.Checkpoint, tol float64) Probe {
	return CheckFunc{Probe: "aggregate-sum", Fn: func() error {
		wantByRound := make(map[int64]*checkpoint.Checkpoint, len(want))
		for _, c := range want {
			wantByRound[c.Round] = c
		}
		if len(got) == 0 {
			return fmt.Errorf("no committed rounds to check")
		}
		for _, g := range got {
			w, ok := wantByRound[g.Round]
			if !ok {
				return fmt.Errorf("round %d committed but absent from the reference lineage", g.Round)
			}
			if len(g.Params) != len(w.Params) {
				return fmt.Errorf("round %d: dim %d vs reference %d", g.Round, len(g.Params), len(w.Params))
			}
			for i := range g.Params {
				if d := math.Abs(g.Params[i] - w.Params[i]); d > tol || math.IsNaN(g.Params[i]) {
					return fmt.Errorf("round %d param %d: got %g want %g (|Δ|=%g > tol %g)", g.Round, i, g.Params[i], w.Params[i], d, tol)
				}
			}
		}
		return nil
	}}
}

// QuotaProbe asserts the selector quota ledger is conserved and fully
// drained: granted == consumed + revoked (+ outstanding, which must be zero
// once every round is sealed or abandoned and parked devices released).
// stats is fetched at check time so the probe sees the post-teardown ledger.
type QuotaLedger struct {
	Granted, Consumed, Revoked, Outstanding int64
}

// QuotaProbe builds the conservation probe from a ledger fetcher.
func QuotaProbe(fetch func() (QuotaLedger, error)) Probe {
	return CheckFunc{Probe: "quota-conservation", Fn: func() error {
		l, err := fetch()
		if err != nil {
			return err
		}
		// Conservation holds at every mailbox-atomic snapshot, so a
		// violation is immediate and permanent — no settling.
		if l.Granted != l.Consumed+l.Revoked+l.Outstanding {
			return fmt.Errorf("ledger leak: granted %d != consumed %d + revoked %d + outstanding %d",
				l.Granted, l.Consumed, l.Revoked, l.Outstanding)
		}
		// Outstanding quota may still be draining through seal/abandon
		// revocations; give teardown a moment.
		return settle(5*time.Second, func() error {
			l, err := fetch()
			if err != nil {
				return err
			}
			if l.Outstanding != 0 {
				return fmt.Errorf("%d quota slot(s) still outstanding after teardown", l.Outstanding)
			}
			return nil
		})
	}}
}
