package chaos

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/flserver"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/pacing"
	"repro/internal/plan"
	"repro/internal/remote"
	"repro/internal/shard"
	"repro/internal/storage"
	"repro/internal/transport"
)

// ScenarioConfig drives one chaos scenario: a full sharded deployment —
// one coordinator, N selector processes, a device swarm — with every
// shard↔coordinator link (and optionally the device links) wrapped in the
// seeded fault schedule, run to Rounds committed rounds and then verified.
type ScenarioConfig struct {
	// Seed makes the whole fault schedule reproducible (see Injector).
	Seed uint64
	// Spec is the fault schedule. Link roles: "shard:<i>" for shard i's
	// coordinator link, "coord" for the coordinator's accepted side of those
	// links, "device" for device↔selector links (only when WrapDevices).
	Spec Spec

	// Shards is the number of selector processes (default 3).
	Shards int
	// Devices is the swarm size (default 3×K).
	Devices int
	// TargetDevices is K, the reports each round wants (default 8).
	TargetDevices int
	// Rounds is how many rounds must commit (default 5).
	Rounds int
	// Features sizes the model (default 4).
	Features int

	// IdenticalDevices gives every device the same local data and runtime
	// seed, which makes the committed lineage independent of which subset of
	// devices survives the faults — the property SumProbe needs. Scenario
	// runs used as a fault-free reference should set it too.
	IdenticalDevices bool
	// WrapDevices also wraps the device-facing listeners (role "device").
	WrapDevices bool

	// ReportTimeout bounds each round's report window (default 3s);
	// SealGrace and TickEvery tune the coordinator (defaults 500ms / 50ms).
	ReportTimeout time.Duration
	SealGrace     time.Duration
	TickEvery     time.Duration
	// Peer tunes the shard→coordinator links; the zero value uses fast
	// failure detection (20ms heartbeat, 3 misses) so partitions are
	// noticed within the scenario's timescale.
	Peer remote.Options

	// Reference, when set, is the fault-free lineage SumProbe compares the
	// committed lineage against (run the same config with an empty Spec to
	// produce one; see ScenarioResult.Lineage).
	Reference []*checkpoint.Checkpoint

	// Timeout bounds the whole run (default 2 minutes).
	Timeout time.Duration
}

// ScenarioResult is one completed (or failed) scenario.
type ScenarioResult struct {
	Rounds  int
	Elapsed time.Duration
	Seed    uint64
	// Plan is the injector's rendered fault plan — log it; with the seed it
	// reproduces the schedule exactly.
	Plan string
	// FaultCounts is the per-kind fault totals ("drop=12", sorted).
	FaultCounts []string
	FaultTotal  int64
	// Lineage is the commit-ordered checkpoint lineage.
	Lineage []*checkpoint.Checkpoint
	// Report is the chaos.Verify verdict over every invariant probe.
	Report        Report
	SealsReceived int64
	BytesUpstream int64
	Accepted      int64
}

// fastPeer is the default link tuning for scenarios: fail fast enough that
// a 2s partition is detected and redialed well inside the run.
func fastPeer() remote.Options {
	return remote.Options{
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatMiss:     3,
		BackoffMin:        5 * time.Millisecond,
		BackoffMax:        50 * time.Millisecond,
	}
}

// RunScenario builds the sharded topology, injects the fault schedule,
// drives it to cfg.Rounds committed rounds, tears everything down, and runs
// the invariant probes. The returned error is an infrastructure failure
// (rounds never committed, setup failed); invariant violations are in
// Result.Report.
func RunScenario(cfg ScenarioConfig) (ScenarioResult, error) {
	var res ScenarioResult
	if cfg.Shards <= 0 {
		cfg.Shards = 3
	}
	if cfg.TargetDevices <= 0 {
		cfg.TargetDevices = 8
	}
	if cfg.Devices <= 0 {
		cfg.Devices = 3 * cfg.TargetDevices
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 5
	}
	if cfg.Features <= 0 {
		cfg.Features = 4
	}
	if cfg.ReportTimeout <= 0 {
		cfg.ReportTimeout = 3 * time.Second
	}
	if cfg.SealGrace <= 0 {
		cfg.SealGrace = 500 * time.Millisecond
	}
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = 50 * time.Millisecond
	}
	if cfg.Peer.HeartbeatInterval == 0 && cfg.Peer.HeartbeatMiss == 0 {
		cfg.Peer = fastPeer()
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Minute
	}

	// The goroutine baseline is captured before anything spawns.
	goroutines := GoroutineProbe(24)
	inj := New(cfg.Seed, cfg.Spec)
	res.Seed = cfg.Seed
	res.Plan = inj.Plan()

	const pop = "pop-chaos"
	p, err := plan.Generate(plan.Config{
		TaskID: pop + "/train", Population: pop,
		Model:     nn.Spec{Kind: nn.KindLogistic, Features: cfg.Features, Classes: 3, Seed: 1},
		StoreName: pop + "-store", BatchSize: 5, Epochs: 1, LearningRate: 0.1,
		TargetDevices: cfg.TargetDevices,
		// Partial rounds are the point: a partitioned shard's reports are
		// allowed to be missing and the survivors still commit.
		MinReportFraction: 0.25,
		SelectionTimeout:  30 * time.Second, ReportTimeout: cfg.ReportTimeout,
	})
	if err != nil {
		return res, err
	}

	dataUsers := cfg.Devices
	if cfg.IdenticalDevices {
		dataUsers = 1
	}
	fed, err := data.Blobs(data.BlobsConfig{
		Users: dataUsers, ExamplesPer: 20, Features: cfg.Features, Classes: 3,
		TestSize: 10, Seed: 11,
	})
	if err != nil {
		return res, err
	}

	store := NewWatchStore(storage.NewMem())
	coord, err := shard.NewCoordinatorProc(shard.CoordinatorConfig{
		Population: pop,
		Plans:      []*plan.Plan{p},
		Store:      store,
		Steering:   pacing.New(time.Second),
		MaxRounds:  cfg.Rounds,
		// MinShards stays 1: rounds must keep settling partial results while
		// a shard is partitioned away, not stall the fleet.
		MinShards: 1,
		SealGrace: cfg.SealGrace,
		TickEvery: cfg.TickEvery,
	})
	if err != nil {
		return res, err
	}
	defer coord.Close()

	mem := transport.NewMemNetwork()
	rawCoordL, err := mem.Listen("chaos-coord")
	if err != nil {
		return res, err
	}
	coordL := inj.WrapListener("coord", rawCoordL)
	defer coordL.Close()
	go coord.Serve(coordL)

	shards := make([]*shard.SelectorProc, cfg.Shards)
	shardDials := make([]func() (transport.Conn, error), cfg.Shards)
	for i := range shards {
		dial := inj.WrapDialer(Role(fmt.Sprintf("shard:%d", i)),
			func() (transport.Conn, error) { return mem.Dial("chaos-coord") })
		sp := shard.NewSelectorProc(shard.SelectorConfig{
			Shard:              uint32(i),
			Steering:           pacing.New(time.Second),
			PopulationEstimate: cfg.Devices,
			Seed:               cfg.Seed + uint64(i)*131,
			Peer:               cfg.Peer,
			RateProbeInterval:  100 * time.Millisecond,
		}, dial)
		shards[i] = sp
		defer sp.Close()
		name := fmt.Sprintf("chaos-shard-%d", i)
		l, err := mem.Listen(name)
		if err != nil {
			return res, err
		}
		if cfg.WrapDevices {
			l = inj.WrapListener(RoleDevice, l)
		}
		defer l.Close()
		go sp.Serve(l)
		shardDials[i] = func() (transport.Conn, error) { return mem.Dial(name) }
	}

	// The round poller advances round-addressed windows/resets as commits
	// land and samples counter monotonicity.
	counters := NewCounterWatch(obs.Default)
	stopPoll := make(chan struct{})
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		inj.AdvanceRound(1)
		for {
			select {
			case <-stopPoll:
				return
			case <-time.After(20 * time.Millisecond):
			}
			if ck, err := store.LatestCheckpoint(p.ID); err == nil {
				inj.AdvanceRound(ck.Round + 1)
			}
			counters.Sample()
		}
	}()
	defer func() { close(stopPoll); pollWG.Wait() }()

	// The device swarm. Under IdenticalDevices every device trains the same
	// data with the same runtime seed AND rebuilds its runtime for every
	// check-in — training shuffles examples from the runtime RNG, so only a
	// fresh RNG per participation makes every update the same pure function
	// of the checkpoint. Then any surviving subset's weighted average is
	// that one vector — the property that makes SumProbe decidable.
	makeClient := func(i int) (*flserver.DeviceClient, error) {
		id := fmt.Sprintf("chaos-dev-%d", i)
		seed := cfg.Seed + uint64(i) + 1000
		user := i
		if cfg.IdenticalDevices {
			seed = cfg.Seed + 1000
			user = 0
		}
		rt := device.NewRuntime(id, 3, nil, seed)
		st, err := device.NewMemStore(pop+"-store", 1000, 0)
		if err != nil {
			return nil, err
		}
		now := time.Now()
		for _, ex := range fed.Users[user] {
			st.Add(ex, now)
		}
		if err := rt.RegisterStore(st); err != nil {
			return nil, err
		}
		return &flserver.DeviceClient{ID: id, Population: pop, Runtime: rt}, nil
	}
	stopDevices := make(chan struct{})
	var devices sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.Devices; i++ {
		client, err := makeClient(i)
		if err != nil {
			return res, err
		}
		idx := i
		dial := shardDials[i%cfg.Shards]
		devices.Add(1)
		go func() {
			defer devices.Done()
			for {
				select {
				case <-stopDevices:
					return
				default:
				}
				if conn, err := dial(); err == nil {
					_, _ = client.RunOnce(conn)
					if cfg.IdenticalDevices {
						// Fresh RNG next participation (see above).
						if c, err := makeClient(idx); err == nil {
							client = c
						}
					}
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}

	stopSwarm := func() error {
		close(stopDevices)
		waited := make(chan struct{})
		go func() { devices.Wait(); close(waited) }()
		select {
		case <-waited:
			return nil
		case <-time.After(30 * time.Second):
			return fmt.Errorf("chaos scenario: device goroutines leaked")
		}
	}

	select {
	case <-coord.Done():
	case <-time.After(cfg.Timeout):
		_ = stopSwarm()
		return res, fmt.Errorf("chaos scenario: %d rounds did not commit within %v (seed=%d)\n%s",
			cfg.Rounds, cfg.Timeout, cfg.Seed, res.Plan)
	}
	res.Elapsed = time.Since(start)
	if err := stopSwarm(); err != nil {
		return res, err
	}

	// Stats and the quota ledger are read while the processes are alive.
	cs, err := coord.Stats()
	if err != nil {
		return res, err
	}
	res.Rounds = cs.RoundsCompleted
	res.SealsReceived = cs.SealsReceived
	res.BytesUpstream = cs.BytesUpstream
	fetchLedger := func() (QuotaLedger, error) {
		var l QuotaLedger
		for _, sp := range shards {
			ss, err := sp.Stats()
			if err != nil {
				return l, err
			}
			l.Granted += ss.Selector.QuotaGranted
			l.Consumed += ss.Selector.QuotaConsumed
			l.Revoked += ss.Selector.QuotaRevoked
			l.Outstanding += ss.Selector.QuotaOutstanding
		}
		return l, nil
	}
	for _, sp := range shards {
		ss, err := sp.Stats()
		if err != nil {
			return res, err
		}
		res.Accepted += ss.Selector.Accepted
	}
	quotaReport := Verify(QuotaProbe(fetchLedger))

	// Teardown, then the quiescence probes.
	for _, sp := range shards {
		sp.Close()
	}
	coordL.Close()
	coord.Close()

	probes := []Probe{
		store.LineageProbe(),
		ConnProbe(inj),
		goroutines,
		counters.Probe(),
	}
	if cfg.Reference != nil {
		probes = append(probes, SumProbe(store.Commits(p.ID), cfg.Reference, 1e-6))
	}
	res.Report = Verify(probes...)
	res.Report.Passed = append(res.Report.Passed, quotaReport.Passed...)
	res.Report.Failures = append(res.Report.Failures, quotaReport.Failures...)

	res.Lineage = store.Commits(p.ID)
	res.FaultCounts = inj.FaultCounts()
	res.FaultTotal = inj.Trace().Total()
	if res.Rounds < cfg.Rounds {
		return res, fmt.Errorf("chaos scenario: committed %d/%d rounds (seed=%d)", res.Rounds, cfg.Rounds, cfg.Seed)
	}
	return res, nil
}
