// Package transport provides the bidirectional message streams devices use
// to talk to the FL server (Sec. 2.2: devices "check in to the server by
// opening a bidirectional stream... used to track liveness and orchestrate
// multi-step communication").
//
// Two implementations: an in-memory transport for simulation and tests, and
// a TCP transport for the standalone server binaries. TCP frames carry the
// compact binary codec of internal/protocol for the five wire messages
// (length-prefixed, no reflection); anything else rides a gob-encoded
// fallback frame.
package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/obs"
	"repro/internal/protocol"
)

// Process-wide TCP frame byte counters (headers included). Plain atomic
// adds on the send/recv paths — the accounting must not add allocations to
// the report hot loop. The in-memory transport never frames, so it counts
// nothing; /dashboard traffic totals reflect real wire bytes only.
var (
	obsTxBytes = obs.Default.Counter("fl_net_tx_bytes_total")
	obsRxBytes = obs.Default.Counter("fl_net_rx_bytes_total")
)

// Conn is a bidirectional message stream.
type Conn interface {
	// Send transmits one message.
	Send(msg interface{}) error
	// Recv blocks for the next message; it returns an error when the peer
	// closed the stream.
	Recv() (interface{}, error)
	// Close tears the stream down; pending Recv calls fail.
	Close() error
}

// Listener accepts incoming streams.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	Addr() string
}

// --- In-memory transport ---

type memConn struct {
	in     <-chan interface{}
	out    chan<- interface{}
	done   chan struct{}
	peer   *memConn
	closeO sync.Once
}

// Pipe returns a connected pair of in-memory streams.
func Pipe() (Conn, Conn) {
	ab := make(chan interface{}, 64)
	ba := make(chan interface{}, 64)
	a := &memConn{in: ba, out: ab, done: make(chan struct{})}
	b := &memConn{in: ab, out: ba, done: make(chan struct{})}
	a.peer, b.peer = b, a
	return a, b
}

// Send implements Conn.
func (c *memConn) Send(msg interface{}) error {
	// Pre-framed messages exist for the TCP wire; deliver the original.
	if e, ok := msg.(*Encoded); ok {
		msg = e.msg
	}
	// Check closure before attempting the buffered send; otherwise a ready
	// buffer slot could win the select against a closed-peer signal.
	select {
	case <-c.done:
		return fmt.Errorf("transport: connection closed")
	case <-c.peer.done:
		return fmt.Errorf("transport: peer closed")
	default:
	}
	select {
	case <-c.done:
		return fmt.Errorf("transport: connection closed")
	case <-c.peer.done:
		return fmt.Errorf("transport: peer closed")
	case c.out <- msg:
		return nil
	}
}

// Recv implements Conn.
func (c *memConn) Recv() (interface{}, error) {
	select {
	case msg := <-c.in:
		return msg, nil
	case <-c.done:
		return nil, fmt.Errorf("transport: connection closed")
	case <-c.peer.done:
		// Drain anything already buffered before reporting closure.
		select {
		case msg := <-c.in:
			return msg, nil
		default:
			return nil, fmt.Errorf("transport: peer closed")
		}
	}
}

// Close implements Conn.
func (c *memConn) Close() error {
	c.closeO.Do(func() { close(c.done) })
	return nil
}

// MemNetwork is an in-memory dial/listen registry keyed by address name.
type MemNetwork struct {
	mu        sync.Mutex
	listeners map[string]*memListener
}

// NewMemNetwork returns an empty network.
func NewMemNetwork() *MemNetwork {
	return &MemNetwork{listeners: make(map[string]*memListener)}
}

type memListener struct {
	addr    string
	backlog chan Conn
	done    chan struct{}
	once    sync.Once
	net     *MemNetwork
}

// Listen registers a listener at addr.
func (n *MemNetwork) Listen(addr string) (Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, exists := n.listeners[addr]; exists {
		return nil, fmt.Errorf("transport: address %q in use", addr)
	}
	l := &memListener{addr: addr, backlog: make(chan Conn, 128), done: make(chan struct{}), net: n}
	n.listeners[addr] = l
	return l, nil
}

// Dial connects to a registered listener.
func (n *MemNetwork) Dial(addr string) (Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[addr]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: no listener at %q", addr)
	}
	client, server := Pipe()
	select {
	case l.backlog <- server:
		return client, nil
	case <-l.done:
		return nil, fmt.Errorf("transport: listener at %q closed", addr)
	}
}

// Accept implements Listener.
func (l *memListener) Accept() (Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, fmt.Errorf("transport: listener closed")
	}
}

// Close implements Listener.
func (l *memListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.net.mu.Lock()
		delete(l.net.listeners, l.addr)
		l.net.mu.Unlock()
	})
	return nil
}

// Addr implements Listener.
func (l *memListener) Addr() string { return l.addr }

// --- TCP transport ---

// Wire framing: u32 frame length | u8 wire version | u8 type code |
// payload. The length covers the version and code bytes. Type codes are the
// protocol package's; CodeGob marks a gob-encoded envelope for message
// types outside the binary codec.
const (
	wireVersion = 1
	// frameOverhead is the version + type-code bytes counted by the length.
	frameOverhead = 2
	// maxFrame bounds a single message so a corrupt or hostile length
	// prefix cannot ask Recv to allocate unbounded memory.
	maxFrame = 1 << 30
)

type tcpConn struct {
	c net.Conn
	// sendMu serializes writers: frames must not interleave.
	sendMu sync.Mutex
}

// envelope wraps messages so gob can carry interface values on the
// fallback path.
type envelope struct {
	Msg interface{}
}

// Encoded is a message marshaled at most once for transmission to many
// peers — e.g. one round's CheckinResponse fanned out to every device of a
// runtime version, where re-marshaling the multi-MB plan+checkpoint
// payload per device would copy it O(devices) times. TCP conns lazily
// marshal on first send and then reuse the cached payload; the in-memory
// transport delivers the original message and never marshals at all. The
// cached payload is immutable once built (sync.Once publishes it), so one
// Encoded value may be sent concurrently over any number of connections.
type Encoded struct {
	msg interface{}

	once  sync.Once
	code  byte
	parts [][]byte
	size  int
	err   error
}

// Message returns the wrapped message.
func (e *Encoded) Message() interface{} { return e.msg }

// Encode wraps msg for repeated sending.
func Encode(msg interface{}) *Encoded { return &Encoded{msg: msg} }

// marshaled returns the cached (code, parts, total size), building them on
// first use.
func (e *Encoded) marshaled() (byte, [][]byte, int, error) {
	e.once.Do(func() {
		e.code, e.parts, e.size, e.err = marshalFrame(e.msg)
	})
	return e.code, e.parts, e.size, e.err
}

// marshalFrame produces the type code + payload segments for one frame: the
// binary codec for protocol messages (exact-size metadata buffers with the
// large update/plan/checkpoint fields aliased, never copied), gob for
// everything else. size is the summed payload length.
func marshalFrame(msg interface{}) (byte, [][]byte, int, error) {
	code, parts, ok := protocol.MarshalBinaryParts(msg)
	if !ok {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(envelope{Msg: msg}); err != nil {
			return 0, nil, 0, fmt.Errorf("transport: gob fallback: %w", err)
		}
		code, parts = protocol.CodeGob, [][]byte{buf.Bytes()}
	}
	size := 0
	for _, p := range parts {
		size += len(p)
	}
	if size > maxFrame-frameOverhead {
		return 0, nil, 0, fmt.Errorf("transport: message of %d bytes exceeds frame limit", size)
	}
	return code, parts, size, nil
}

// Send implements Conn. Every message goes out as a single vectored write
// (header + payload segments, no intermediate buffer): a multi-MB device
// update or plan+checkpoint payload is written straight from the caller's
// buffer, never copied into a frame. An Encoded message reuses its cached
// segments instead of re-marshaling.
func (t *tcpConn) Send(msg interface{}) error {
	var code byte
	var parts [][]byte
	var size int
	var err error
	if e, ok := msg.(*Encoded); ok {
		code, parts, size, err = e.marshaled()
	} else {
		code, parts, size, err = marshalFrame(msg)
	}
	if err != nil {
		return err
	}
	var hdr [4 + frameOverhead]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(frameOverhead+size))
	hdr[4] = wireVersion
	hdr[5] = code

	t.sendMu.Lock()
	defer t.sendMu.Unlock()
	bufs := make(net.Buffers, 0, 1+len(parts))
	bufs = append(bufs, hdr[:])
	for _, p := range parts {
		if len(p) > 0 {
			bufs = append(bufs, p)
		}
	}
	wrote, err := bufs.WriteTo(t.c)
	obsTxBytes.Add(wrote)
	return err
}

// Recv implements Conn.
func (t *tcpConn) Recv() (interface{}, error) {
	var hdr [4 + frameOverhead]byte
	if _, err := io.ReadFull(t.c, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n < frameOverhead || n > maxFrame {
		return nil, fmt.Errorf("transport: bad frame length %d", n)
	}
	if hdr[4] != wireVersion {
		return nil, fmt.Errorf("transport: unsupported wire version %d", hdr[4])
	}
	code := hdr[5]
	payload, err := readPayload(t.c, int(n-frameOverhead))
	if err != nil {
		return nil, err
	}
	obsRxBytes.Add(int64(len(hdr) + len(payload)))
	if code == protocol.CodeGob {
		var e envelope
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&e); err != nil {
			return nil, fmt.Errorf("transport: gob fallback: %w", err)
		}
		return e.Msg, nil
	}
	return protocol.UnmarshalBinary(code, payload)
}

// readPayload reads an n-byte payload. Up to exactAlloc the buffer is
// allocated in one piece; beyond that it grows geometrically as bytes
// actually arrive, so a hostile length prefix can only commit memory by
// sending that much data — an 8-byte header promising a gigabyte costs the
// receiver 4 MiB, not 1 GiB.
func readPayload(r io.Reader, n int) ([]byte, error) {
	const exactAlloc = 4 << 20
	if n <= exactAlloc {
		buf := make([]byte, n)
		_, err := io.ReadFull(r, buf)
		return buf, err
	}
	buf := make([]byte, exactAlloc)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	for len(buf) < n {
		next := 2 * len(buf)
		if next > n {
			next = n
		}
		grown := make([]byte, next)
		copy(grown, buf)
		if _, err := io.ReadFull(r, grown[len(buf):]); err != nil {
			return nil, err
		}
		buf = grown
	}
	return buf, nil
}

// Close implements Conn.
func (t *tcpConn) Close() error { return t.c.Close() }

func wrapTCP(c net.Conn) Conn {
	return &tcpConn{c: c}
}

type tcpListener struct{ l net.Listener }

// ListenTCP listens on a TCP address; ":0" picks a free port.
func ListenTCP(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpListener{l: l}, nil
}

// DialTCP connects to a TCP FL server.
func DialTCP(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return wrapTCP(c), nil
}

// Accept implements Listener.
func (t *tcpListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		return nil, err
	}
	return wrapTCP(c), nil
}

// Close implements Listener.
func (t *tcpListener) Close() error { return t.l.Close() }

// Addr implements Listener.
func (t *tcpListener) Addr() string { return t.l.Addr().String() }
