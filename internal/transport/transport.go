// Package transport provides the bidirectional message streams devices use
// to talk to the FL server (Sec. 2.2: devices "check in to the server by
// opening a bidirectional stream... used to track liveness and orchestrate
// multi-step communication").
//
// Two implementations: an in-memory transport for simulation and tests, and
// a TCP transport (gob-encoded) for the standalone server binaries.
package transport

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
)

// Conn is a bidirectional message stream.
type Conn interface {
	// Send transmits one message.
	Send(msg interface{}) error
	// Recv blocks for the next message; it returns an error when the peer
	// closed the stream.
	Recv() (interface{}, error)
	// Close tears the stream down; pending Recv calls fail.
	Close() error
}

// Listener accepts incoming streams.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	Addr() string
}

// --- In-memory transport ---

type memConn struct {
	in     <-chan interface{}
	out    chan<- interface{}
	done   chan struct{}
	peer   *memConn
	closeO sync.Once
}

// Pipe returns a connected pair of in-memory streams.
func Pipe() (Conn, Conn) {
	ab := make(chan interface{}, 64)
	ba := make(chan interface{}, 64)
	a := &memConn{in: ba, out: ab, done: make(chan struct{})}
	b := &memConn{in: ab, out: ba, done: make(chan struct{})}
	a.peer, b.peer = b, a
	return a, b
}

// Send implements Conn.
func (c *memConn) Send(msg interface{}) error {
	// Check closure before attempting the buffered send; otherwise a ready
	// buffer slot could win the select against a closed-peer signal.
	select {
	case <-c.done:
		return fmt.Errorf("transport: connection closed")
	case <-c.peer.done:
		return fmt.Errorf("transport: peer closed")
	default:
	}
	select {
	case <-c.done:
		return fmt.Errorf("transport: connection closed")
	case <-c.peer.done:
		return fmt.Errorf("transport: peer closed")
	case c.out <- msg:
		return nil
	}
}

// Recv implements Conn.
func (c *memConn) Recv() (interface{}, error) {
	select {
	case msg := <-c.in:
		return msg, nil
	case <-c.done:
		return nil, fmt.Errorf("transport: connection closed")
	case <-c.peer.done:
		// Drain anything already buffered before reporting closure.
		select {
		case msg := <-c.in:
			return msg, nil
		default:
			return nil, fmt.Errorf("transport: peer closed")
		}
	}
}

// Close implements Conn.
func (c *memConn) Close() error {
	c.closeO.Do(func() { close(c.done) })
	return nil
}

// MemNetwork is an in-memory dial/listen registry keyed by address name.
type MemNetwork struct {
	mu        sync.Mutex
	listeners map[string]*memListener
}

// NewMemNetwork returns an empty network.
func NewMemNetwork() *MemNetwork {
	return &MemNetwork{listeners: make(map[string]*memListener)}
}

type memListener struct {
	addr    string
	backlog chan Conn
	done    chan struct{}
	once    sync.Once
	net     *MemNetwork
}

// Listen registers a listener at addr.
func (n *MemNetwork) Listen(addr string) (Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, exists := n.listeners[addr]; exists {
		return nil, fmt.Errorf("transport: address %q in use", addr)
	}
	l := &memListener{addr: addr, backlog: make(chan Conn, 128), done: make(chan struct{}), net: n}
	n.listeners[addr] = l
	return l, nil
}

// Dial connects to a registered listener.
func (n *MemNetwork) Dial(addr string) (Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[addr]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: no listener at %q", addr)
	}
	client, server := Pipe()
	select {
	case l.backlog <- server:
		return client, nil
	case <-l.done:
		return nil, fmt.Errorf("transport: listener at %q closed", addr)
	}
}

// Accept implements Listener.
func (l *memListener) Accept() (Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, fmt.Errorf("transport: listener closed")
	}
}

// Close implements Listener.
func (l *memListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.net.mu.Lock()
		delete(l.net.listeners, l.addr)
		l.net.mu.Unlock()
	})
	return nil
}

// Addr implements Listener.
func (l *memListener) Addr() string { return l.addr }

// --- TCP transport ---

type tcpConn struct {
	c   net.Conn
	enc *gob.Encoder
	dec *gob.Decoder
	// gob encoders are not safe for concurrent writers.
	sendMu sync.Mutex
}

// envelope wraps messages so gob can carry interface values.
type envelope struct {
	Msg interface{}
}

// Send implements Conn.
func (t *tcpConn) Send(msg interface{}) error {
	t.sendMu.Lock()
	defer t.sendMu.Unlock()
	return t.enc.Encode(envelope{Msg: msg})
}

// Recv implements Conn.
func (t *tcpConn) Recv() (interface{}, error) {
	var e envelope
	if err := t.dec.Decode(&e); err != nil {
		return nil, err
	}
	return e.Msg, nil
}

// Close implements Conn.
func (t *tcpConn) Close() error { return t.c.Close() }

func wrapTCP(c net.Conn) Conn {
	return &tcpConn{c: c, enc: gob.NewEncoder(c), dec: gob.NewDecoder(c)}
}

type tcpListener struct{ l net.Listener }

// ListenTCP listens on a TCP address; ":0" picks a free port.
func ListenTCP(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpListener{l: l}, nil
}

// DialTCP connects to a TCP FL server.
func DialTCP(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return wrapTCP(c), nil
}

// Accept implements Listener.
func (t *tcpListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		return nil, err
	}
	return wrapTCP(c), nil
}

// Close implements Listener.
func (t *tcpListener) Close() error { return t.l.Close() }

// Addr implements Listener.
func (t *tcpListener) Addr() string { return t.l.Addr().String() }
