package transport

import (
	"sync"
	"testing"
	"time"

	"repro/internal/protocol"
)

func TestPipeRoundTrip(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	if err := a.Send("hello"); err != nil {
		t.Fatal(err)
	}
	msg, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if msg != "hello" {
		t.Fatalf("got %v", msg)
	}
	// And the other direction.
	if err := b.Send(42); err != nil {
		t.Fatal(err)
	}
	if msg, _ := a.Recv(); msg != 42 {
		t.Fatalf("got %v", msg)
	}
}

func TestPipeCloseUnblocksRecv(t *testing.T) {
	a, b := Pipe()
	done := make(chan error, 1)
	go func() {
		_, err := b.Recv()
		done <- err
	}()
	a.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Recv after peer close should error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv did not unblock on close")
	}
}

func TestPipeDrainBeforeCloseError(t *testing.T) {
	a, b := Pipe()
	_ = a.Send("x")
	a.Close()
	msg, err := b.Recv()
	if err != nil || msg != "x" {
		t.Fatalf("buffered message lost: %v %v", msg, err)
	}
}

func TestSendToClosedFails(t *testing.T) {
	a, b := Pipe()
	b.Close()
	if err := a.Send("x"); err == nil {
		t.Fatal("send to closed peer should fail")
	}
	a.Close()
	if err := a.Send("y"); err == nil {
		t.Fatal("send on closed conn should fail")
	}
}

func TestMemNetworkDialListen(t *testing.T) {
	n := NewMemNetwork()
	l, err := n.Listen("fl-server")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Addr() != "fl-server" {
		t.Fatalf("addr = %q", l.Addr())
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := l.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		defer c.Close()
		msg, err := c.Recv()
		if err != nil {
			t.Error(err)
			return
		}
		_ = c.Send("echo:" + msg.(string))
	}()

	c, err := n.Dial("fl-server")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_ = c.Send("ping")
	msg, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if msg != "echo:ping" {
		t.Fatalf("got %v", msg)
	}
	wg.Wait()
}

func TestMemNetworkErrors(t *testing.T) {
	n := NewMemNetwork()
	if _, err := n.Dial("nowhere"); err == nil {
		t.Fatal("dial to missing listener should fail")
	}
	l, _ := n.Listen("a")
	if _, err := n.Listen("a"); err == nil {
		t.Fatal("duplicate listen should fail")
	}
	l.Close()
	if _, err := n.Listen("a"); err != nil {
		t.Fatal("address should be free after close")
	}
	if _, err := n.Dial("a"); err != nil {
		t.Fatal("dial to reopened listener should work")
	}
}

func TestListenerCloseUnblocksAccept(t *testing.T) {
	n := NewMemNetwork()
	l, _ := n.Listen("x")
	done := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		done <- err
	}()
	l.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Accept should fail after close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Accept did not unblock")
	}
}

func TestTCPTransportProtocolMessages(t *testing.T) {
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := l.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		defer c.Close()
		msg, err := c.Recv()
		if err != nil {
			t.Error(err)
			return
		}
		req, ok := msg.(protocol.CheckinRequest)
		if !ok {
			t.Errorf("got %T", msg)
			return
		}
		_ = c.Send(protocol.CheckinResponse{Accepted: true, TaskID: "t", Round: 7, Plan: []byte{1, 2}})
		_ = req
	}()

	c, err := DialTCP(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_ = c.Send(protocol.CheckinRequest{DeviceID: "d1", Population: "pop", RuntimeVersion: 3})
	msg, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	resp, ok := msg.(protocol.CheckinResponse)
	if !ok || !resp.Accepted || resp.Round != 7 || len(resp.Plan) != 2 {
		t.Fatalf("got %+v", msg)
	}
	wg.Wait()
}

func TestTCPRecvAfterPeerClose(t *testing.T) {
	l, _ := ListenTCP("127.0.0.1:0")
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err == nil {
			c.Close()
		}
	}()
	c, err := DialTCP(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Recv(); err == nil {
		t.Fatal("Recv should fail after peer close")
	}
}
