package transport

import (
	"encoding/gob"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/protocol"
)

func TestPipeRoundTrip(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	if err := a.Send("hello"); err != nil {
		t.Fatal(err)
	}
	msg, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if msg != "hello" {
		t.Fatalf("got %v", msg)
	}
	// And the other direction.
	if err := b.Send(42); err != nil {
		t.Fatal(err)
	}
	if msg, _ := a.Recv(); msg != 42 {
		t.Fatalf("got %v", msg)
	}
}

func TestPipeCloseUnblocksRecv(t *testing.T) {
	a, b := Pipe()
	done := make(chan error, 1)
	go func() {
		_, err := b.Recv()
		done <- err
	}()
	a.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Recv after peer close should error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv did not unblock on close")
	}
}

func TestPipeDrainBeforeCloseError(t *testing.T) {
	a, b := Pipe()
	_ = a.Send("x")
	a.Close()
	msg, err := b.Recv()
	if err != nil || msg != "x" {
		t.Fatalf("buffered message lost: %v %v", msg, err)
	}
}

func TestSendToClosedFails(t *testing.T) {
	a, b := Pipe()
	b.Close()
	if err := a.Send("x"); err == nil {
		t.Fatal("send to closed peer should fail")
	}
	a.Close()
	if err := a.Send("y"); err == nil {
		t.Fatal("send on closed conn should fail")
	}
}

func TestMemNetworkDialListen(t *testing.T) {
	n := NewMemNetwork()
	l, err := n.Listen("fl-server")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Addr() != "fl-server" {
		t.Fatalf("addr = %q", l.Addr())
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := l.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		defer c.Close()
		msg, err := c.Recv()
		if err != nil {
			t.Error(err)
			return
		}
		_ = c.Send("echo:" + msg.(string))
	}()

	c, err := n.Dial("fl-server")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_ = c.Send("ping")
	msg, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if msg != "echo:ping" {
		t.Fatalf("got %v", msg)
	}
	wg.Wait()
}

func TestMemNetworkErrors(t *testing.T) {
	n := NewMemNetwork()
	if _, err := n.Dial("nowhere"); err == nil {
		t.Fatal("dial to missing listener should fail")
	}
	l, _ := n.Listen("a")
	if _, err := n.Listen("a"); err == nil {
		t.Fatal("duplicate listen should fail")
	}
	l.Close()
	if _, err := n.Listen("a"); err != nil {
		t.Fatal("address should be free after close")
	}
	if _, err := n.Dial("a"); err != nil {
		t.Fatal("dial to reopened listener should work")
	}
}

func TestListenerCloseUnblocksAccept(t *testing.T) {
	n := NewMemNetwork()
	l, _ := n.Listen("x")
	done := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		done <- err
	}()
	l.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Accept should fail after close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Accept did not unblock")
	}
}

func TestTCPTransportProtocolMessages(t *testing.T) {
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := l.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		defer c.Close()
		msg, err := c.Recv()
		if err != nil {
			t.Error(err)
			return
		}
		req, ok := msg.(protocol.CheckinRequest)
		if !ok {
			t.Errorf("got %T", msg)
			return
		}
		_ = c.Send(protocol.CheckinResponse{Accepted: true, TaskID: "t", Round: 7, Plan: []byte{1, 2}})
		_ = req
	}()

	c, err := DialTCP(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_ = c.Send(protocol.CheckinRequest{DeviceID: "d1", Population: "pop", RuntimeVersion: 3})
	msg, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	resp, ok := msg.(protocol.CheckinResponse)
	if !ok || !resp.Accepted || resp.Round != 7 || len(resp.Plan) != 2 {
		t.Fatalf("got %+v", msg)
	}
	wg.Wait()
}

// tcpPair returns a connected client/server conn over loopback.
func tcpPair(t *testing.T) (Conn, Conn) {
	t.Helper()
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			close(accepted)
			return
		}
		accepted <- c
	}()
	client, err := DialTCP(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	server, ok := <-accepted
	if !ok {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

// TestTCPBinaryCodecEveryMessage pushes each of the five protocol messages
// through the framed binary codec over a real socket and checks exact
// field equality.
func TestTCPBinaryCodecEveryMessage(t *testing.T) {
	client, server := tcpPair(t)
	msgs := []interface{}{
		protocol.CheckinRequest{DeviceID: "d1", Population: "pop", RuntimeVersion: 3, AttestationToken: []byte{7, 8}},
		protocol.CheckinResponse{Accepted: true, TaskID: "t", Round: 9, Plan: []byte{1}, Checkpoint: []byte{2, 3}, ReportDeadline: time.Minute},
		protocol.ReportRequest{DeviceID: "d1", TaskID: "t", Round: 9, Update: []byte{4, 5, 6}, Metrics: map[string]float64{"train_loss": 0.5}},
		protocol.ReportResponse{Accepted: false, Reason: "window closed", RetryAfter: time.Hour},
		protocol.Abort{TaskID: "t", Round: 9, Reason: "enough devices"},
	}
	for _, in := range msgs {
		if err := client.Send(in); err != nil {
			t.Fatalf("send %T: %v", in, err)
		}
		out, err := server.Recv()
		if err != nil {
			t.Fatalf("recv %T: %v", in, err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("round trip changed %T:\n in  %+v\n out %+v", in, in, out)
		}
	}
}

// TestTCPMultiMegabytePayloads moves a multi-MB checkpoint down and a
// multi-MB update up, the round's two dominant transfers.
func TestTCPMultiMegabytePayloads(t *testing.T) {
	client, server := tcpPair(t)
	big := make([]byte, 8<<20)
	for i := range big {
		big[i] = byte(i * 131)
	}
	go func() {
		_ = server.Send(protocol.CheckinResponse{Accepted: true, TaskID: "t", Plan: big[:1<<20], Checkpoint: big})
	}()
	msg, err := client.Recv()
	if err != nil {
		t.Fatal(err)
	}
	resp := msg.(protocol.CheckinResponse)
	if !reflect.DeepEqual(resp.Checkpoint, big) || len(resp.Plan) != 1<<20 {
		t.Fatal("multi-MB checkin payload corrupted in flight")
	}
	go func() {
		_ = client.Send(protocol.ReportRequest{DeviceID: "d", Update: big})
	}()
	msg, err = server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if rep := msg.(protocol.ReportRequest); !reflect.DeepEqual(rep.Update, big) {
		t.Fatal("multi-MB update corrupted in flight")
	}
}

// benchExtra is a message type outside the binary codec, exercising the gob
// fallback frame.
type benchExtra struct {
	Name  string
	Vals  []float64
	Round int64
}

func TestTCPGobFallbackInterop(t *testing.T) {
	gob.Register(benchExtra{})
	client, server := tcpPair(t)
	// Fallback frames interleave with binary frames on one stream.
	in := benchExtra{Name: "debug-stats", Vals: []float64{1, 2.5}, Round: 3}
	if err := client.Send(in); err != nil {
		t.Fatal(err)
	}
	if err := client.Send(protocol.Abort{TaskID: "t", Round: 3, Reason: "r"}); err != nil {
		t.Fatal(err)
	}
	first, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, in) {
		t.Fatalf("gob fallback changed the message: %+v", first)
	}
	second, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if ab, ok := second.(protocol.Abort); !ok || ab.Round != 3 {
		t.Fatalf("binary frame after gob frame: %+v", second)
	}
}

// TestEncodedFanout pre-frames one CheckinResponse and sends it over both
// transports: TCP peers must decode the identical message, and the
// in-memory transport must deliver the original value. Concurrent sends of
// one Encoded over many conns are the fan-out pool's pattern (-race covers
// the immutability claim).
func TestEncodedFanout(t *testing.T) {
	in := protocol.CheckinResponse{Accepted: true, TaskID: "t", Round: 4,
		Plan: []byte{1, 2}, Checkpoint: make([]byte, 1<<16), ReportDeadline: time.Minute}
	enc := Encode(in)
	if !reflect.DeepEqual(enc.Message(), in) {
		t.Fatal("Encoded lost the original message")
	}

	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	if err := a.Send(enc); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("mem transport delivered %T %+v", got, got)
	}

	const conns = 4
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		client, server := tcpPair(t)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := server.Send(enc); err != nil {
				t.Error(err)
			}
		}()
		got, err := client.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, in) {
			t.Fatalf("tcp conn %d decoded %+v", i, got)
		}
	}
	wg.Wait()
}

// TestTCPConcurrentSenders hammers one conn from many goroutines: frames
// must never interleave (every message decodes cleanly).
func TestTCPConcurrentSenders(t *testing.T) {
	client, server := tcpPair(t)
	const senders, per = 8, 25
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := client.Send(protocol.ReportRequest{
					DeviceID: "d", Round: int64(s*per + i),
					Update: make([]byte, 1024+s),
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	seen := 0
	for seen < senders*per {
		msg, err := server.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := msg.(protocol.ReportRequest); !ok {
			t.Fatalf("frame corrupted under concurrent sends: %T", msg)
		}
		seen++
	}
	wg.Wait()
}

// TestTCPHostileLengthPrefix sends a raw frame header promising a huge
// payload, then nothing: the server's Recv must fail once the stream ends
// without committing gigabytes of memory up front (readPayload grows the
// buffer only as bytes arrive).
func TestTCPHostileLengthPrefix(t *testing.T) {
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	recvErr := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			recvErr <- err
			return
		}
		defer c.Close()
		_, err = c.Recv()
		recvErr <- err
	}()
	raw, err := net.Dial("tcp", l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	// length 1 GiB, valid version byte, binary type code — then hang up.
	_, _ = raw.Write([]byte{0x40, 0x00, 0x00, 0x00, 1, byte(protocol.CodeAbort)})
	_ = raw.Close()
	select {
	case err := <-recvErr:
		if err == nil {
			t.Fatal("Recv accepted a truncated 1 GiB frame")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Recv did not fail on a hostile length prefix")
	}
}

func TestTCPRecvAfterPeerClose(t *testing.T) {
	l, _ := ListenTCP("127.0.0.1:0")
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err == nil {
			c.Close()
		}
	}()
	c, err := DialTCP(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Recv(); err == nil {
		t.Fatal("Recv should fail after peer close")
	}
}
