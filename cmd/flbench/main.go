// Command flbench regenerates every table and figure from the paper's
// evaluation (see DESIGN.md §4 for the experiment index):
//
//	flbench -exp fig6       # diurnal participation & completion rate
//	flbench -exp fig7       # completed / aborted / dropped per round
//	flbench -exp fig8       # round & participation time distributions
//	flbench -exp fig9       # server traffic asymmetry
//	flbench -exp table1     # session shape distribution
//	flbench -exp nextword   # Sec. 8 next-word prediction comparison
//	flbench -exp ksweep     # Sec. 9 devices-per-round sweep
//	flbench -exp overselect # Sec. 9 over-selection vs drop-out
//	flbench -exp secagg     # Sec. 6 Secure Aggregation cost
//	flbench -exp robust     # robust aggregation: attack fraction × policy grid
//	flbench -exp pacing     # Sec. 2.3 pace steering regimes
//	flbench -exp roundtput  # round fan-out/ingest pipeline throughput
//	flbench -exp multipop   # Sec. 4.2 fleet gateway: 3 populations, one Selector layer
//	flbench -exp multitask  # Sec. 7 task lifecycle: interleaved train + eval tasks on one population
//	flbench -exp shardtput  # Sec. 4.1 sharded selector tier: 3 selector procs + 1 coordinator
//	flbench -exp obs        # telemetry instrument overhead (per-event cost)
//	flbench -exp chaos      # deterministic fault-injection grid with invariant-checked recovery
//	flbench -exp all        # everything
//
// -json emits machine-readable results (one object keyed by experiment)
// instead of the formatted tables, for the BENCH_*.json perf trajectory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/checkpoint"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/flserver"
	"repro/internal/shard"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (fig6, fig7, fig8, fig9, table1, nextword, ksweep, overselect, secagg, robust, chaos, pacing, roundtput, multipop, multitask, shardtput, obs, all)")
	days := flag.Int("days", 3, "simulated days for the operational figures")
	pop := flag.Int("pop", 20000, "fleet size for the operational figures")
	target := flag.Int("target", 100, "devices per round (K)")
	seed := flag.Uint64("seed", 1, "random seed")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON results instead of formatted tables")
	flag.Parse()

	if err := run(*exp, *seed, *days, *pop, *target, *asJSON); err != nil {
		fmt.Fprintln(os.Stderr, "flbench:", err)
		os.Exit(1)
	}
}

type formatter interface{ Format() string }

// roundtputRow is one (transport, K, dim, encoding) cell of the
// round-throughput experiment.
type roundtputRow struct {
	Transport    string
	Devices      int
	Dim          int
	Encoding     string
	MillisRound  float64
	PlanMarshals int64
	Completed    int
	Lost         int
}

// roundtputResult mirrors BenchmarkRoundThroughput for the CLI: one real
// round per cell through the Master Aggregator fan-out/ingest pipeline.
type roundtputResult struct {
	Rows []roundtputRow
}

// Format implements formatter.
func (r *roundtputResult) Format() string {
	var b strings.Builder
	b.WriteString("Round throughput (Configuration fan-out + wire + edge-accumulated Reporting ingest)\n")
	b.WriteString("  transport     K     dim  encoding   ms/round   plan-marshals  completed\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-9s %5d %7d  %-8s %10.1f %15d %10d\n",
			row.Transport, row.Devices, row.Dim, row.Encoding, row.MillisRound, row.PlanMarshals, row.Completed)
	}
	return b.String()
}

func roundThroughput() (*roundtputResult, error) {
	res := &roundtputResult{}
	for _, tcp := range []bool{false, true} {
		name := "mem"
		if tcp {
			name = "tcp"
		}
		for _, k := range []int{64, 256, 1024} {
			for _, dim := range []int{4096, 65536} {
				for _, enc := range []struct {
					name string
					e    checkpoint.Encoding
				}{{"float64", checkpoint.EncodingFloat64}, {"quant8", checkpoint.EncodingQuant8}} {
					st, err := flserver.RunBenchRound(flserver.BenchRoundConfig{
						Devices: k, Dim: dim, TCP: tcp, Encoding: enc.e,
					})
					if err != nil {
						return nil, fmt.Errorf("roundtput %s K=%d dim=%d enc=%s: %w", name, k, dim, enc.name, err)
					}
					res.Rows = append(res.Rows, roundtputRow{
						Transport:    name,
						Devices:      k,
						Dim:          dim,
						Encoding:     enc.name,
						MillisRound:  float64(st.Elapsed.Microseconds()) / 1000,
						PlanMarshals: st.PlanMarshals,
						Completed:    st.Completed,
						Lost:         st.Lost,
					})
				}
			}
		}
	}
	return res, nil
}

// multipopRow is one transport's run of the multi-population fleet
// experiment.
type multipopRow struct {
	Transport    string
	Populations  int
	Devices      int
	MillisTotal  float64
	RoundsPerPop map[string]int
	Accepted     int64
	Rejected     int64
}

// multipopResult mirrors BenchmarkMultiPopulation for the CLI: one fleet
// gateway drives 3 populations to committed rounds over a shared Selector
// layer and a shared multi-tenant device fleet, per transport.
type multipopResult struct {
	Rows []multipopRow
}

// Format implements formatter.
func (r *multipopResult) Format() string {
	var b strings.Builder
	b.WriteString("Fleet gateway (one Selector layer, N populations, shared device fleet)\n")
	b.WriteString("  transport  pops  devices   ms-total   accepted  rejected  rounds/pop\n")
	for _, row := range r.Rows {
		minRounds := 0
		for _, n := range row.RoundsPerPop {
			if minRounds == 0 || n < minRounds {
				minRounds = n
			}
		}
		fmt.Fprintf(&b, "  %-9s %5d %8d %10.1f %10d %9d %11d\n",
			row.Transport, row.Populations, row.Devices, row.MillisTotal,
			row.Accepted, row.Rejected, minRounds)
	}
	return b.String()
}

func multiPopulation(seed uint64) (*multipopResult, error) {
	res := &multipopResult{}
	for _, tcp := range []bool{false, true} {
		name := "mem"
		if tcp {
			name = "tcp"
		}
		cfg := fleet.BenchConfig{
			Populations: 3, Devices: 9, TargetDevices: 3, Rounds: 2,
			TCP: tcp, Seed: seed,
		}
		st, err := fleet.RunBenchMultiPop(cfg)
		if err != nil {
			return nil, fmt.Errorf("multipop %s: %w", name, err)
		}
		res.Rows = append(res.Rows, multipopRow{
			Transport:    name,
			Populations:  cfg.Populations,
			Devices:      cfg.Devices,
			MillisTotal:  float64(st.Elapsed.Microseconds()) / 1000,
			RoundsPerPop: st.Rounds,
			Accepted:     st.Accepted,
			Rejected:     st.Rejected,
		})
	}
	return res, nil
}

// multitaskRow is one transport's run of the multi-task lifecycle
// experiment.
type multitaskRow struct {
	Transport string
	// RoundsCommitted / RoundsPerSec are keyed by task ID.
	RoundsCommitted map[string]int
	RoundsPerSec    map[string]float64
	MillisTotal     float64
}

// multitaskResult mirrors BenchmarkMultiTask for the CLI: one population
// interleaving a train task with an eval task submitted through the live
// task lifecycle API, per transport.
type multitaskResult struct {
	Rows []multitaskRow
}

// Format implements formatter.
func (r *multitaskResult) Format() string {
	var b strings.Builder
	b.WriteString("Task lifecycle (one population, train + eval tasks interleaved by the TaskSet)\n")
	b.WriteString("  transport  task                 rounds   rounds/sec   ms-total\n")
	for _, row := range r.Rows {
		ids := make([]string, 0, len(row.RoundsCommitted))
		for id := range row.RoundsCommitted {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Fprintf(&b, "  %-9s %-20s %6d %12.1f %10.1f\n",
				row.Transport, id, row.RoundsCommitted[id], row.RoundsPerSec[id], row.MillisTotal)
		}
	}
	return b.String()
}

func multiTask(seed uint64) (*multitaskResult, error) {
	res := &multitaskResult{}
	for _, tcp := range []bool{false, true} {
		name := "mem"
		if tcp {
			name = "tcp"
		}
		st, err := flserver.RunBenchMultiTask(flserver.BenchMultiTaskConfig{
			Devices: 9, TargetDevices: 3, TrainRounds: 4, EvalEvery: 2,
			TCP: tcp, Seed: seed,
		})
		if err != nil {
			return nil, fmt.Errorf("multitask %s: %w", name, err)
		}
		row := multitaskRow{
			Transport:       name,
			RoundsCommitted: make(map[string]int, len(st.PerTask)),
			RoundsPerSec:    st.RoundsPerSec,
			MillisTotal:     float64(st.Elapsed.Microseconds()) / 1000,
		}
		for _, t := range st.PerTask {
			row.RoundsCommitted[t.ID] = t.RoundsCommitted
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// shardtputRow is one (transport, K) cell of the sharded-deployment
// experiment: 3 selector processes, 1 coordinator, sealed stripes upstream.
type shardtputRow struct {
	Transport     string
	Shards        int
	Devices       int
	K             int
	MillisTotal   float64
	Rounds        int
	SealsPerRound float64
	BytesUpRound  float64
	Accepted      int64
}

// shardtputResult mirrors BenchmarkShardedRound for the CLI: the sharded
// selector tier commits rounds while only sealed stripes — one per shard
// per round — cross the selector→coordinator boundary.
type shardtputResult struct {
	Rows []shardtputRow
}

// Format implements formatter.
func (r *shardtputResult) Format() string {
	var b strings.Builder
	b.WriteString("Sharded selector tier (N selector procs, 1 coordinator, sealed stripes upstream)\n")
	b.WriteString("  transport  shards     K  devices   ms-total  rounds  seals/round  bytes-up/round   accepted\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-9s %6d %5d %8d %10.1f %7d %12.1f %15.0f %10d\n",
			row.Transport, row.Shards, row.K, row.Devices, row.MillisTotal,
			row.Rounds, row.SealsPerRound, row.BytesUpRound, row.Accepted)
	}
	return b.String()
}

func shardThroughput(seed uint64) (*shardtputResult, error) {
	res := &shardtputResult{}
	for _, cell := range []struct {
		tcp bool
		k   int
	}{{false, 64}, {false, 512}, {true, 64}} {
		name := "mem"
		if cell.tcp {
			name = "tcp"
		}
		cfg := shard.BenchShardedConfig{
			Shards: 3, TargetDevices: cell.k, Devices: 2 * cell.k, Rounds: 2,
			TCP: cell.tcp, Seed: seed,
		}
		st, err := shard.RunBenchSharded(cfg)
		if err != nil {
			return nil, fmt.Errorf("shardtput %s K=%d: %w", name, cell.k, err)
		}
		res.Rows = append(res.Rows, shardtputRow{
			Transport:     name,
			Shards:        cfg.Shards,
			Devices:       cfg.Devices,
			K:             cell.k,
			MillisTotal:   float64(st.Elapsed.Microseconds()) / 1000,
			Rounds:        st.Rounds,
			SealsPerRound: float64(st.SealsReceived) / float64(st.Rounds),
			BytesUpRound:  float64(st.BytesUpstream) / float64(st.Rounds),
			Accepted:      st.Accepted,
		})
	}
	return res, nil
}

func run(exp string, seed uint64, days, pop, target int, asJSON bool) error {
	collected := make(map[string]interface{})
	runOne := func(name string, f func() (formatter, error)) error {
		res, err := f()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if asJSON {
			collected[name] = res
			return nil
		}
		fmt.Println(res.Format())
		return nil
	}
	emit := func() error {
		if !asJSON {
			return nil
		}
		out, err := json.MarshalIndent(map[string]interface{}{
			"seed": seed, "days": days, "pop": pop, "target": target,
			"results": collected,
		}, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil
	}

	all := map[string]func() (formatter, error){
		"fig6":   func() (formatter, error) { return experiments.Fig6(seed, days, pop, target) },
		"fig7":   func() (formatter, error) { return experiments.Fig7(seed, days, pop, target) },
		"fig8":   func() (formatter, error) { return experiments.Fig8(seed, days, pop, target) },
		"fig9":   func() (formatter, error) { return experiments.Fig9(seed, days, pop, target) },
		"table1": func() (formatter, error) { return experiments.Table1(seed, days, pop, target) },
		"nextword": func() (formatter, error) {
			return experiments.NextWord(experiments.NextWordConfig{Seed: seed})
		},
		"ksweep": func() (formatter, error) {
			return experiments.KSweep([]int{1, 2, 5, 10, 20, 50, 100, 200}, 5, seed)
		},
		"overselect": func() (formatter, error) {
			return experiments.OverSelect(
				[]float64{1.0, 1.05, 1.1, 1.2, 1.3, 1.4, 1.5},
				[]float64{0.06, 0.08, 0.10}, target, 2000, seed)
		},
		"secagg": func() (formatter, error) {
			return experiments.SecAggCost([]int{4, 8, 16, 32, 64}, 256, 256, []float64{0, 0.1, 0.25})
		},
		"robust": func() (formatter, error) {
			return experiments.RobustCost(experiments.RobustCostConfig{Seed: seed})
		},
		"pacing":    func() (formatter, error) { return experiments.Pacing(10000, seed) },
		"adaptive":  func() (formatter, error) { return experiments.Adaptive(seed) },
		"wallclock": func() (formatter, error) { return experiments.WallClock(seed) },
		"roundtput": func() (formatter, error) { return roundThroughput() },
		"multipop":  func() (formatter, error) { return multiPopulation(seed) },
		"multitask": func() (formatter, error) { return multiTask(seed) },
		"shardtput": func() (formatter, error) { return shardThroughput(seed) },
		"obs":       func() (formatter, error) { return experiments.TelemetryOverhead() },
		"chaos":     func() (formatter, error) { return experiments.ChaosGrid(seed) },
	}

	if exp == "all" {
		// Deterministic order matching the paper's presentation.
		for _, name := range []string{"pacing", "secagg", "robust", "chaos", "roundtput", "multipop", "multitask", "shardtput", "obs", "nextword", "wallclock", "fig6", "fig7", "fig8", "fig9", "table1", "ksweep", "overselect", "adaptive"} {
			if err := runOne(name, all[name]); err != nil {
				return err
			}
		}
		return emit()
	}
	f, ok := all[exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	if err := runOne(exp, f); err != nil {
		return err
	}
	return emit()
}
