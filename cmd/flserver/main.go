// Command flserver runs the FL fleet gateway over TCP: ONE process whose
// shared Selector layer serves every named FL population concurrently.
// Simulated devices connect with cmd/fldevices.
//
//	flserver -addr :8750 -population gboard -rounds 10 -target 20
//	flserver -addr :8750 -population gboard,search,photos -rounds 5
//	flserver -addr :8750 -population gboard -population search
//
// -population may be repeated and/or comma-separated; every population is
// served behind the same address and check-ins are routed by the
// population named in each device's CheckinRequest. The fleet commits each
// population's round checkpoints to -storage (a per-population
// subdirectory; in-memory when empty) and prints per-population round
// progress until every population reaches -rounds.
//
// -tasks-dir turns the process into an operable service (Sec. 7
// model-engineer workflow): the directory is watched for *.json task op
// files, each processed exactly once, so new train/eval plans can be
// dropped onto the LIVE process — and running tasks paused, resumed, or
// retired — without restarting it:
//
//	flserver -addr :8750 -population gboard -rounds 0 -tasks-dir /etc/fl-tasks
//	cat > /etc/fl-tasks/10-eval.json <<'EOF'
//	{"population": "gboard",
//	 "task": {"TaskID": "gboard/eval", "Population": "gboard", "Type": 2,
//	          "Model": {"Kind": 2, "Features": 8, "Hidden": 16, "Classes": 4, "Seed": 1},
//	          "StoreName": "examples", "TargetDevices": 10},
//	 "policy": {"EvalEvery": 2, "EvalOf": "gboard/train"}}
//	EOF
//
// -shard-listen switches the process into COORDINATOR MODE for a sharded
// deployment (DESIGN.md process-topology section): instead of terminating
// device connections itself, it listens for flselector shard links, fans
// each round's RoundConfig out to the shards, merges their sealed stripes,
// and commits the round — the only process that writes checkpoints:
//
//	flserver -shard-listen :8760 -population gboard -rounds 10 -min-shards 3
package main

import (
	"flag"
	"fmt"
	"log"
	"path/filepath"
	"strings"
	"time"

	repro "repro"

	"repro/internal/cliutil"
	"repro/internal/obs"
	"repro/internal/pacing"
	"repro/internal/plan"
	"repro/internal/shard"
	"repro/internal/storage"
	"repro/internal/tasks"
	"repro/internal/transport"
)

// taskProgress converts task lifecycle stats into the shared progress rows.
func taskProgress(ts []tasks.Stats) []obs.TaskProgress {
	out := make([]obs.TaskProgress, len(ts))
	for i, t := range ts {
		out[i] = obs.TaskProgress{
			ID: t.ID, Type: fmt.Sprint(t.Type), State: fmt.Sprint(t.State),
			RoundsCommitted: t.RoundsCommitted, RoundsFailed: t.RoundsFailed,
			Devices: t.Devices, Note: t.Note,
		}
	}
	return out
}

// coordProgress snapshots coordinator-mode progress as the shared
// per-population progress block — the one renderer behind the status
// ticker, the finish line, and /dashboard.
func coordProgress(population string, coord *shard.CoordinatorProc) []obs.PopulationProgress {
	st, err := coord.Stats()
	if err != nil {
		return nil
	}
	return []obs.PopulationProgress{{
		Name:      population,
		Round:     st.CurrentRound,
		Completed: st.RoundsCompleted,
		Failed:    st.RoundsFailed,

		Sharded:       true,
		Shards:        st.Shards,
		Seals:         st.SealsReceived,
		BytesUpstream: st.BytesUpstream,

		Tasks: taskProgress(coord.TaskStats()),
	}}
}

// fleetProgress snapshots every registered population of the in-process
// fleet as the shared progress blocks.
func fleetProgress(fleet *repro.Fleet, names []string) []obs.PopulationProgress {
	out := make([]obs.PopulationProgress, 0, len(names))
	for _, name := range names {
		st, err := fleet.PopulationStats(name)
		if err != nil {
			continue
		}
		p := obs.PopulationProgress{
			Name:      name,
			Round:     st.Coordinator.CurrentRound,
			Completed: st.Coordinator.RoundsCompleted,
			Failed:    st.Coordinator.RoundsFailed,

			Accepted: st.Selector.Accepted,
			Rejected: st.Selector.Rejected,
			Held:     int64(st.Selector.Held),
		}
		if ts, err := fleet.TaskStats(name); err == nil {
			p.Tasks = taskProgress(ts)
		}
		out = append(out, p)
	}
	return out
}

// logProgress prints progress blocks through the standard logger, one log
// line per rendered line (so every line keeps its timestamp prefix).
func logProgress(pops []obs.PopulationProgress) {
	for _, p := range pops {
		for _, line := range strings.Split(p.String(), "\n") {
			log.Print(line)
		}
	}
}

// serveObs starts the observability HTTP surface when -obs-listen is set
// (empty addr = no-op) and logs where it landed.
func serveObs(addr, title string, progress func() []obs.PopulationProgress) *obs.Server {
	srv, err := obs.Default.Serve(addr, obs.WithTitle(title), obs.WithProgress(progress))
	if err != nil {
		log.Fatal(err)
	}
	if srv != nil {
		log.Printf("observability surface on http://%s (/metrics, /debug/vars, /debug/pprof, /dashboard)", srv.Addr())
	}
	return srv
}

// runCoordinator is flserver's coordinator mode: one population, round
// state and the lock service owned here, device traffic terminated by the
// flselector shards that dial in.
func runCoordinator(shardListen, obsListen, population string, p *repro.Plan, store storage.Store, rounds, minShards int, sealGrace, tickEvery time.Duration) {
	coord, err := shard.NewCoordinatorProc(shard.CoordinatorConfig{
		Population: population,
		Plans:      []*repro.Plan{p},
		Store:      store,
		Steering:   pacing.New(time.Minute),
		MaxRounds:  rounds,
		MinShards:  minShards,
		SealGrace:  sealGrace,
		TickEvery:  tickEvery,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Close()

	l, err := transport.ListenTCP(shardListen)
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	log.Printf("FL coordinator for %s listening for shards on %s (rounds=%d, min-shards=%d)",
		population, l.Addr(), rounds, minShards)
	go coord.Serve(l)

	if srv := serveObs(obsListen, "fl coordinator: "+population,
		func() []obs.PopulationProgress { return coordProgress(population, coord) }); srv != nil {
		defer srv.Close()
	}

	ticker := time.NewTicker(2 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-coord.Done():
			st, err := coord.Stats()
			if err != nil {
				log.Fatal(err)
			}
			ckpt, err := store.LatestCheckpoint(p.ID)
			if err != nil {
				log.Fatalf("%s finished but no checkpoint: %v", population, err)
			}
			fmt.Printf("%s done: %d rounds committed (%d failed), final round %d, |params|=%d, %d seals / %d bytes upstream\n",
				population, st.RoundsCompleted, st.RoundsFailed, ckpt.Round, len(ckpt.Params),
				st.SealsReceived, st.BytesUpstream)
			return
		case <-ticker.C:
			pops := coordProgress(population, coord)
			if len(pops) == 0 {
				log.Printf("%s: stats unavailable", population)
				continue
			}
			logProgress(pops)
		}
	}
}

// watchTasksDir polls dir for operator task op files and applies each to
// the live fleet exactly once, logging every outcome. A broken file is
// consumed and reported rather than retried, so a typo cannot wedge the
// watcher.
func watchTasksDir(fleet *repro.Fleet, dir string) {
	scanner := tasks.NewDirScanner(dir)
	log.Printf("watching %s for task op files", dir)
	for {
		ops, err := scanner.Scan()
		if err != nil {
			log.Printf("tasks-dir: %v", err)
			time.Sleep(5 * time.Second)
			continue
		}
		for _, pending := range ops {
			if pending.Err != nil {
				log.Printf("tasks-dir %s: %v", pending.File, pending.Err)
				continue
			}
			op := pending.Op
			var err error
			switch op.Action {
			case tasks.OpSubmit:
				var p *repro.Plan
				if p, err = repro.GeneratePlan(*op.Task); err == nil {
					err = fleet.SubmitTask(op.Population, p, op.Policy)
				}
			case tasks.OpPause:
				err = fleet.PauseTask(op.Population, op.TaskID)
			case tasks.OpResume:
				err = fleet.ResumeTask(op.Population, op.TaskID)
			case tasks.OpRetire:
				err = fleet.RetireTask(op.Population, op.TaskID)
			}
			if err != nil {
				log.Printf("tasks-dir %s: %s %s: %v", pending.File, op.Action, op.Population, err)
				continue
			}
			id := op.TaskID
			if op.Task != nil {
				id = op.Task.TaskID
			}
			log.Printf("tasks-dir %s: %s %s/%s applied", pending.File, op.Action, op.Population, id)
		}
		time.Sleep(2 * time.Second)
	}
}

func main() {
	var populations cliutil.ListFlag
	addr := flag.String("addr", ":8750", "TCP listen address")
	flag.Var(&populations, "population", "FL population name(s); repeatable, comma-separated (default gboard)")
	target := flag.Int("target", 20, "devices per round (K) per population")
	rounds := flag.Int("rounds", 10, "rounds to run per population before exiting (0 = forever)")
	storageDir := flag.String("storage", "", "checkpoint directory, one subdirectory per population (empty = in-memory)")
	selTimeout := flag.Duration("selection-timeout", 30*time.Second, "selection window")
	repTimeout := flag.Duration("report-timeout", time.Minute, "reporting window")
	tasksDir := flag.String("tasks-dir", "", "directory watched for task op files (JSON); submit/pause/resume/retire tasks on the live process")
	shardListen := flag.String("shard-listen", "", "coordinator mode: listen for flselector shard links on this address instead of serving devices")
	minShards := flag.Int("min-shards", 1, "coordinator mode: shards required before a round starts")
	sealGrace := flag.Duration("seal-grace", 0, "coordinator mode: wait for straggler seals after the report deadline before settling a partial round (0 = default 2s)")
	tickEvery := flag.Duration("tick-every", 0, "coordinator mode: round scheduling tick (0 = default 250ms)")
	obsListen := flag.String("obs-listen", "", "serve /metrics, /debug/vars, /debug/pprof and /dashboard on this address (empty = off)")
	clip := flag.Float64("clip", 0, "norm-bound robust aggregation: clip each update's per-example-average L2 norm at this bound (0 = plain weighted mean)")
	flag.Parse()
	if len(populations) == 0 {
		populations = cliutil.ListFlag{"gboard"}
	}

	if *shardListen != "" {
		if len(populations) != 1 {
			log.Fatal("coordinator mode serves exactly one -population")
		}
		name := populations[0]
		p, err := repro.GeneratePlan(plan.Config{
			TaskID:           name + "/train",
			Population:       name,
			Model:            repro.ModelSpec{Kind: repro.KindMLP, Features: 8, Hidden: 16, Classes: 4, Seed: 1},
			StoreName:        "examples",
			BatchSize:        10,
			Epochs:           1,
			LearningRate:     0.05,
			TargetDevices:    *target,
			SelectionTimeout: *selTimeout,
			ReportTimeout:    *repTimeout,
			Robust:           robustPolicy(*clip),
		})
		if err != nil {
			log.Fatal(err)
		}
		var store storage.Store
		if *storageDir == "" {
			store = storage.NewMem()
		} else {
			if store, err = storage.NewFile(filepath.Join(*storageDir, name)); err != nil {
				log.Fatal(err)
			}
		}
		runCoordinator(*shardListen, *obsListen, name, p, store, *rounds, *minShards, *sealGrace, *tickEvery)
		return
	}

	fleet, err := repro.NewFleet(repro.FleetConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer fleet.Close()

	type popState struct {
		name  string
		plan  *repro.Plan
		store storage.Store
	}
	states := make([]popState, 0, len(populations))
	for _, name := range populations {
		p, err := repro.GeneratePlan(plan.Config{
			TaskID:           name + "/train",
			Population:       name,
			Model:            repro.ModelSpec{Kind: repro.KindMLP, Features: 8, Hidden: 16, Classes: 4, Seed: 1},
			StoreName:        "examples",
			BatchSize:        10,
			Epochs:           1,
			LearningRate:     0.05,
			TargetDevices:    *target,
			SelectionTimeout: *selTimeout,
			ReportTimeout:    *repTimeout,
			Robust:           robustPolicy(*clip),
		})
		if err != nil {
			log.Fatal(err)
		}
		var store storage.Store
		if *storageDir == "" {
			store = storage.NewMem()
		} else {
			store, err = storage.NewFile(filepath.Join(*storageDir, name))
			if err != nil {
				log.Fatal(err)
			}
		}
		if err := fleet.Register(repro.PopulationSpec{
			Population: name,
			Plans:      []*repro.Plan{p},
			Store:      store,
			Steering:   repro.NewPaceSteering(*selTimeout + *repTimeout),
			MaxRounds:  *rounds,
		}); err != nil {
			log.Fatal(err)
		}
		states = append(states, popState{name: name, plan: p, store: store})
	}

	l, err := repro.ListenTCP(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	log.Printf("FL fleet gateway for %d population(s) %v listening on %s (K=%d, rounds=%d)",
		len(states), populations.String(), l.Addr(), *target, *rounds)

	go fleet.Serve(l)

	if srv := serveObs(*obsListen, "fl fleet gateway",
		func() []obs.PopulationProgress { return fleetProgress(fleet, populations) }); srv != nil {
		defer srv.Close()
	}

	if *tasksDir != "" {
		go watchTasksDir(fleet, *tasksDir)
	}

	allDone := make(chan struct{})
	go func() {
		for _, st := range states {
			done, ok := fleet.Done(st.name)
			if !ok {
				return
			}
			<-done
		}
		close(allDone)
	}()

	ticker := time.NewTicker(2 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-allDone:
			for _, ps := range states {
				st, err := fleet.PopulationStats(ps.name)
				if err != nil {
					log.Fatalf("population %s: stats: %v", ps.name, err)
				}
				ckpt, err := ps.store.LatestCheckpoint(ps.plan.ID)
				if err != nil {
					log.Fatalf("population %s finished but no checkpoint: %v", ps.name, err)
				}
				fmt.Printf("%s done: %d rounds committed (%d failed), final round %d, |params|=%d\n",
					ps.name, st.Coordinator.RoundsCompleted, st.Coordinator.RoundsFailed, ckpt.Round, len(ckpt.Params))
			}
			return
		case <-ticker.C:
			logProgress(fleetProgress(fleet, populations))
		}
	}
}

// robustPolicy builds the norm-bound robust policy for a positive -clip
// (the only policy that distributes across shards; see plan.RobustPolicy).
func robustPolicy(clip float64) plan.RobustPolicy {
	if clip > 0 {
		return plan.RobustPolicy{Kind: plan.RobustNormBound, ClipNorm: clip}
	}
	return plan.RobustPolicy{}
}
