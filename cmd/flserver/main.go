// Command flserver runs the FL server over TCP for one FL population.
// Simulated devices connect with cmd/fldevices.
//
//	flserver -addr :8750 -population gboard -rounds 10 -target 20
//
// The server commits each round's global checkpoint to -storage (a
// directory; in-memory when empty) and prints round progress.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	repro "repro"

	"repro/internal/flserver"
	"repro/internal/plan"
	"repro/internal/storage"
)

func main() {
	addr := flag.String("addr", ":8750", "TCP listen address")
	populationName := flag.String("population", "gboard", "FL population name")
	target := flag.Int("target", 20, "devices per round (K)")
	rounds := flag.Int("rounds", 10, "rounds to run before exiting (0 = forever)")
	storageDir := flag.String("storage", "", "checkpoint directory (empty = in-memory)")
	selTimeout := flag.Duration("selection-timeout", 30*time.Second, "selection window")
	repTimeout := flag.Duration("report-timeout", time.Minute, "reporting window")
	flag.Parse()

	p, err := repro.GeneratePlan(plan.Config{
		TaskID:           *populationName + "/train",
		Population:       *populationName,
		Model:            repro.ModelSpec{Kind: repro.KindMLP, Features: 8, Hidden: 16, Classes: 4, Seed: 1},
		StoreName:        "examples",
		BatchSize:        10,
		Epochs:           1,
		LearningRate:     0.05,
		TargetDevices:    *target,
		SelectionTimeout: *selTimeout,
		ReportTimeout:    *repTimeout,
	})
	if err != nil {
		log.Fatal(err)
	}

	var store storage.Store
	if *storageDir == "" {
		store = storage.NewMem()
	} else {
		store, err = storage.NewFile(*storageDir)
		if err != nil {
			log.Fatal(err)
		}
	}

	srv, err := repro.NewServer(flserver.Config{
		Population: *populationName,
		Plans:      []*plan.Plan{p},
		Store:      store,
		Steering:   repro.NewPaceSteering(*selTimeout + *repTimeout),
		MaxRounds:  *rounds,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	l, err := repro.ListenTCP(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	log.Printf("FL server for population %q listening on %s (K=%d, rounds=%d)",
		*populationName, l.Addr(), *target, *rounds)

	go srv.Serve(l)

	ticker := time.NewTicker(2 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-srv.Done():
			st := srv.Stats()
			ckpt, err := store.LatestCheckpoint(p.ID)
			if err != nil {
				log.Fatalf("finished but no checkpoint: %v", err)
			}
			fmt.Printf("done: %d rounds committed (%d failed), final round %d, |params|=%d\n",
				st.RoundsCompleted, st.RoundsFailed, ckpt.Round, len(ckpt.Params))
			return
		case <-ticker.C:
			st := srv.Stats()
			sel := srv.SelectorStats()
			log.Printf("round %d: %d completed, %d failed; selector accepted=%d rejected=%d held=%d",
				st.CurrentRound, st.RoundsCompleted, st.RoundsFailed, sel.Accepted, sel.Rejected, sel.Held)
		}
	}
}
