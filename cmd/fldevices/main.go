// Command fldevices runs a simulated device fleet against a TCP FL fleet
// gateway started with cmd/flserver:
//
//	fldevices -addr localhost:8750 -population gboard -devices 40
//	fldevices -addr localhost:8750 -population gboard,search,photos
//
// -addr accepts a comma-separated list for a SHARDED deployment (one
// address per flselector process); device i homes on address i mod N, so
// the swarm spreads evenly across the selector shards:
//
//	fldevices -addr localhost:8751,localhost:8752,localhost:8753 -population gboard
//
// -population may be repeated and/or comma-separated. Each device is
// multi-tenant (Sec. 3): it holds a non-IID slice of a synthetic
// classification dataset in its example store, registers with EVERY named
// population, and loops one connection at a time under the on-device
// Scheduler — one check-in per population per pass, training sessions
// strictly sequential, rejected check-ins backing off per pace steering.
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	repro "repro"

	"repro/internal/cliutil"
	"repro/internal/device"
	"repro/internal/flserver"
)

func main() {
	var populations cliutil.ListFlag
	var addrs cliutil.ListFlag
	flag.Var(&addrs, "addr", "FL server address(es); comma-separated for sharded deployments, device i homes on address i mod N (default localhost:8750)")
	flag.Var(&populations, "population", "FL population name(s); repeatable, comma-separated (default gboard)")
	devices := flag.Int("devices", 40, "number of simulated devices")
	duration := flag.Duration("duration", 10*time.Minute, "how long to run")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()
	if len(populations) == 0 {
		populations = cliutil.ListFlag{"gboard"}
	}
	if len(addrs) == 0 {
		addrs = cliutil.ListFlag{"localhost:8750"}
	}

	fed, err := repro.Blobs(repro.BlobsConfig{
		Users: *devices, ExamplesPer: 40, Features: 8, Classes: 4,
		TestSize: 1, Skew: 0.5, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	var completed, rejected, failed int64
	stop := time.After(*duration)
	done := make(chan struct{})
	go func() {
		<-stop
		close(done)
	}()

	var wg sync.WaitGroup
	for i := 0; i < *devices; i++ {
		i := i
		wg.Add(1)
		// Shard-aware homing: this device always dials the same address.
		addr := addrs[i%len(addrs)]
		go func() {
			defer wg.Done()
			// One runtime and one example store serve every population (the
			// plans all read the "examples" store); the per-device Scheduler
			// guarantees sessions never overlap.
			store, err := repro.NewExampleStore("examples", 1000, 0)
			if err != nil {
				log.Fatal(err)
			}
			now := time.Now()
			for _, ex := range fed.Users[i] {
				store.Add(ex, now)
			}
			rt := repro.NewDeviceRuntime(fmt.Sprintf("dev-%d", i), 3, *seed+uint64(i))
			if err := rt.RegisterStore(store); err != nil {
				log.Fatal(err)
			}
			clients := make([]*flserver.DeviceClient, len(populations))
			for pi, pop := range populations {
				clients[pi] = &flserver.DeviceClient{
					ID: fmt.Sprintf("dev-%d", i), Population: pop, Runtime: rt,
				}
			}
			sched := device.NewScheduler()
			for {
				select {
				case <-done:
					return
				default:
				}
				// One pass of the connection loop: the periodic job enqueues
				// one session per registered population; the scheduler runs
				// them strictly sequentially (Sec. 3 Multi-Tenancy).
				var minRetry time.Duration
				dialErr := false
				for _, c := range clients {
					c := c
					_ = sched.Enqueue(&device.Job{Population: c.Population, Run: func() {
						conn, err := repro.DialTCP(addr)
						if err != nil {
							// Server gone or not yet up.
							dialErr = true
							return
						}
						out, err := c.RunOnce(conn)
						switch {
						case err != nil:
							atomic.AddInt64(&failed, 1)
						case out.ReportAccepted:
							atomic.AddInt64(&completed, 1)
						case !out.Accepted:
							atomic.AddInt64(&rejected, 1)
							if out.RetryAfter > 0 && (minRetry == 0 || out.RetryAfter < minRetry) {
								minRetry = out.RetryAfter
							}
						}
					}})
				}
				if _, err := sched.DrainAll(); err != nil {
					log.Fatal(err)
				}
				// Back off per the tightest pace-steering hint, compressed
				// for the demo; dial failures wait a full second.
				wait := minRetry
				if wait <= 0 {
					wait = 100 * time.Millisecond
				}
				if wait > 5*time.Second {
					wait = time.Second
				}
				if dialErr {
					wait = time.Second
				}
				select {
				case <-done:
					return
				case <-time.After(wait):
				}
			}
		}()
	}

	ticker := time.NewTicker(2 * time.Second)
	defer ticker.Stop()
	go func() {
		for range ticker.C {
			log.Printf("fleet (%d populations): %d updates accepted, %d rejections, %d errors",
				len(populations), atomic.LoadInt64(&completed), atomic.LoadInt64(&rejected), atomic.LoadInt64(&failed))
		}
	}()
	wg.Wait()
	fmt.Printf("fleet done: %d updates accepted, %d rejections, %d errors\n",
		atomic.LoadInt64(&completed), atomic.LoadInt64(&rejected), atomic.LoadInt64(&failed))
}
