// Command fldevices runs a simulated device fleet against a TCP FL server
// started with cmd/flserver:
//
//	fldevices -addr localhost:8750 -population gboard -devices 40
//
// Each device holds a non-IID slice of a synthetic classification dataset
// in its example store and loops: check in → (train + report | back off).
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	repro "repro"

	"repro/internal/flserver"
)

func main() {
	addr := flag.String("addr", "localhost:8750", "FL server address")
	populationName := flag.String("population", "gboard", "FL population name")
	devices := flag.Int("devices", 40, "number of simulated devices")
	duration := flag.Duration("duration", 10*time.Minute, "how long to run")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	fed, err := repro.Blobs(repro.BlobsConfig{
		Users: *devices, ExamplesPer: 40, Features: 8, Classes: 4,
		TestSize: 1, Skew: 0.5, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	var completed, rejected, failed int64
	stop := time.After(*duration)
	done := make(chan struct{})
	go func() {
		<-stop
		close(done)
	}()

	var wg sync.WaitGroup
	for i := 0; i < *devices; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			store, err := repro.NewExampleStore("examples", 1000, 0)
			if err != nil {
				log.Fatal(err)
			}
			now := time.Now()
			for _, ex := range fed.Users[i] {
				store.Add(ex, now)
			}
			rt := repro.NewDeviceRuntime(fmt.Sprintf("dev-%d", i), 3, *seed+uint64(i))
			if err := rt.RegisterStore(store); err != nil {
				log.Fatal(err)
			}
			client := &flserver.DeviceClient{
				ID: fmt.Sprintf("dev-%d", i), Population: *populationName, Runtime: rt,
			}
			for {
				select {
				case <-done:
					return
				default:
				}
				conn, err := repro.DialTCP(*addr)
				if err != nil {
					// Server gone or not yet up.
					select {
					case <-done:
						return
					case <-time.After(time.Second):
						continue
					}
				}
				out, err := client.RunOnce(conn)
				switch {
				case err != nil:
					atomic.AddInt64(&failed, 1)
					time.Sleep(500 * time.Millisecond)
				case out.ReportAccepted:
					atomic.AddInt64(&completed, 1)
				case !out.Accepted:
					atomic.AddInt64(&rejected, 1)
					wait := out.RetryAfter
					if wait <= 0 || wait > 5*time.Second {
						wait = time.Second // compress pace steering for the demo
					}
					select {
					case <-done:
						return
					case <-time.After(wait):
					}
				}
			}
		}()
	}

	ticker := time.NewTicker(2 * time.Second)
	defer ticker.Stop()
	go func() {
		for range ticker.C {
			log.Printf("fleet: %d updates accepted, %d rejections, %d errors",
				atomic.LoadInt64(&completed), atomic.LoadInt64(&rejected), atomic.LoadInt64(&failed))
		}
	}()
	wg.Wait()
	fmt.Printf("fleet done: %d updates accepted, %d rejections, %d errors\n",
		atomic.LoadInt64(&completed), atomic.LoadInt64(&rejected), atomic.LoadInt64(&failed))
}
