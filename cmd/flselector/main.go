// Command flselector runs ONE selector shard of a sharded FL deployment
// (DESIGN.md process-topology section): it terminates device TCP
// connections, runs the edge decode-and-accumulate stripes for each round
// the coordinator opens, and ships a single sealed stripe upstream per
// round — device updates never leave this process.
//
//	flserver   -shard-listen :8760 -population gboard -rounds 10 -min-shards 3
//	flselector -coordinator localhost:8760 -addr :8751 -shard 0
//	flselector -coordinator localhost:8760 -addr :8752 -shard 1
//	flselector -coordinator localhost:8760 -addr :8753 -shard 2
//	fldevices  -addr localhost:8751,localhost:8752,localhost:8753 -population gboard
//
// The coordinator link reconnects with exponential backoff and heartbeat
// liveness; while it is down, parked devices are steered away with
// pace-steering retry hints instead of stranding on a dead shard.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/chaos"
	"repro/internal/obs"
	"repro/internal/pacing"
	"repro/internal/remote"
	"repro/internal/shard"
	"repro/internal/transport"
)

func main() {
	coordAddr := flag.String("coordinator", "localhost:8760", "coordinator shard-listen address")
	addr := flag.String("addr", ":8751", "device-facing TCP listen address")
	shardID := flag.Uint("shard", 0, "stable 0-based shard index")
	name := flag.String("name", "", "shard name in stats and logs (default shard-<N>)")
	selectors := flag.Int("selectors", 1, "Selector actors terminating device connections")
	estimate := flag.Int("estimate", 1000, "population estimate seeding pace steering")
	seed := flag.Uint64("seed", 1, "random seed")
	obsListen := flag.String("obs-listen", "", "serve /metrics, /debug/vars, /debug/pprof and /dashboard on this address (empty = off)")
	peerHeartbeat := flag.Duration("peer-heartbeat", 0, "coordinator-link heartbeat interval (0 = default 500ms)")
	peerMiss := flag.Int("peer-miss", 0, "consecutive missed heartbeats declaring the coordinator dead (0 = default 4)")
	peerBackoffMin := flag.Duration("peer-backoff-min", 0, "minimum reconnect backoff (0 = default 50ms)")
	peerBackoffMax := flag.Duration("peer-backoff-max", 0, "maximum reconnect backoff (0 = default 5s)")
	peerCallTimeout := flag.Duration("peer-call-timeout", 0, "lock RPC round-trip timeout (0 = default 5s)")
	peerRetryBudget := flag.Duration("peer-retry-budget", 0, "total lock RPC retry budget across link drops (0 = default 2s, negative = fail fast)")
	edgeLinger := flag.Duration("edge-linger", 0, "how long a sealed round answers late devices with explicit aborts (0 = default 2s)")
	chaosSpec := flag.String("chaos", "", `fault-injection spec for the coordinator link, e.g. "shard:drop=0.05,jitter=200ms;shard:partition@6s+2s" (empty = off)`)
	chaosSeed := flag.Uint64("chaos-seed", 1, "seed making the -chaos fault schedule reproducible")
	flag.Parse()

	peer := remote.Options{
		HeartbeatInterval: *peerHeartbeat,
		HeartbeatMiss:     *peerMiss,
		BackoffMin:        *peerBackoffMin,
		BackoffMax:        *peerBackoffMax,
		CallTimeout:       *peerCallTimeout,
		CallRetryBudget:   *peerRetryBudget,
	}
	if err := peer.Validate(); err != nil {
		log.Fatal(err)
	}

	dial := func() (transport.Conn, error) { return transport.DialTCP(*coordAddr) }
	var inj *chaos.Injector // nil wraps nothing: chaos off is the zero value
	if *chaosSpec != "" {
		spec, err := chaos.ParseSpec(*chaosSpec)
		if err != nil {
			log.Fatal(err)
		}
		inj = chaos.New(*chaosSeed, spec)
		dial = inj.WrapDialer(chaos.Role(fmt.Sprintf("shard:%d", *shardID)), dial)
		log.Printf("shard %d: %s", *shardID, inj.Plan())
	}

	sp := shard.NewSelectorProc(shard.SelectorConfig{
		Shard:              uint32(*shardID),
		Name:               *name,
		NumSelectors:       *selectors,
		Steering:           pacing.New(time.Minute),
		PopulationEstimate: *estimate,
		Seed:               *seed + uint64(*shardID)*131,
		Peer:               peer,
		EdgeLinger:         *edgeLinger,
	}, dial)
	defer sp.Close()

	l, err := transport.ListenTCP(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	log.Printf("selector shard %d serving devices on %s, coordinator %s", *shardID, l.Addr(), *coordAddr)

	if srv, err := obs.Default.Serve(*obsListen, obs.WithTitle(fmt.Sprintf("fl selector shard %d", *shardID))); err != nil {
		log.Fatal(err)
	} else if srv != nil {
		defer srv.Close()
		log.Printf("observability surface on http://%s (/metrics, /debug/vars, /debug/pprof, /dashboard)", srv.Addr())
	}

	go func() {
		ticker := time.NewTicker(2 * time.Second)
		defer ticker.Stop()
		for range ticker.C {
			st, err := sp.Stats()
			if err != nil {
				log.Printf("shard %d: stats unavailable: %v", *shardID, err)
				continue
			}
			link := "up"
			if !st.CoordinatorUp {
				link = "DOWN"
			}
			log.Printf("shard %d: coordinator %s; accepted=%d rejected=%d held=%d; seals=%d up-bytes=%d dropped=%d",
				*shardID, link, st.Selector.Accepted, st.Selector.Rejected, st.Selector.Held,
				st.SealsShipped, st.BytesShipped, st.RoundsDropped)
			if counts := inj.FaultCounts(); len(counts) > 0 {
				log.Printf("shard %d: chaos faults: %v", *shardID, counts)
			}
		}
	}()

	// Serve blocks until the listener closes (process killed).
	sp.Serve(l)
	fmt.Printf("shard %d: device listener closed\n", *shardID)
}
